// RIPE-style roas.csv import/export.
//
// RIPE's daily RPKI archive (the paper's §3 source) ships validated ROA
// payloads as CSV: `URI,ASN,IP Prefix,Max Length,Not Before,Not After`.
// This module renders a day's live ROA set in that format and parses such
// files back into (Roa, validity window) records.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rpki/archive.hpp"
#include "util/parse_report.hpp"

namespace droplens::rpki {

/// Export every ROA live on `d` (under `tals`) as a roas.csv body.
std::string write_roa_csv(const RoaArchive& archive, net::Date d,
                          TalSet tals = TalSet::all());

/// Parse a roas.csv body. The header line is optional. The TAL is recovered
/// from the URI's first path element ("rsync://rpki.ripe.net/..." -> RIPE).
/// Under kStrict a malformed row throws ParseError (naming the line number);
/// under kLenient it is skipped and recorded in `report`.
std::vector<RoaRecord> parse_roa_csv(
    std::string_view text,
    util::ParsePolicy policy = util::ParsePolicy::kStrict,
    util::ParseReport* report = nullptr);

/// Load parsed records into an archive (publish at lifetime.begin, revoke
/// at lifetime.end when bounded). Returns the number of ROAs published.
size_t load_roa_csv(RoaArchive& archive, std::string_view text,
                    util::ParsePolicy policy = util::ParsePolicy::kStrict,
                    util::ParseReport* report = nullptr);

}  // namespace droplens::rpki
