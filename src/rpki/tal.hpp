// Trust Anchor Locators.
//
// Each RIR operates a production trust anchor; APNIC and LACNIC additionally
// publish *separate* AS0 TALs for their unallocated-space ROAs (§2.3.1).
// Those AS0 TALs are not configured in any validator by default, and the
// RIRs recommend alert-only use — which is why (§6.2.2) hijacks of
// unallocated space kept working after the AS0 policies shipped.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "rir/rir.hpp"

namespace droplens::rpki {

enum class Tal : uint8_t {
  kAfrinic,
  kApnic,
  kArin,
  kLacnic,
  kRipe,
  kApnicAs0,   // APNIC AS0 policy TAL (prop-132, implemented 2020-09-02)
  kLacnicAs0,  // LACNIC AS0 policy TAL (LAC-2019-12, implemented 2021-06-23)
};

inline constexpr std::array<Tal, 7> kAllTals = {
    Tal::kAfrinic, Tal::kApnic,    Tal::kArin,     Tal::kLacnic,
    Tal::kRipe,    Tal::kApnicAs0, Tal::kLacnicAs0};

constexpr bool is_as0_tal(Tal t) {
  return t == Tal::kApnicAs0 || t == Tal::kLacnicAs0;
}

/// Production TALs ship in validator software; AS0 TALs do not.
constexpr bool configured_by_default(Tal t) { return !is_as0_tal(t); }

constexpr Tal production_tal(rir::Rir r) {
  switch (r) {
    case rir::Rir::kAfrinic: return Tal::kAfrinic;
    case rir::Rir::kApnic: return Tal::kApnic;
    case rir::Rir::kArin: return Tal::kArin;
    case rir::Rir::kLacnic: return Tal::kLacnic;
    case rir::Rir::kRipe: return Tal::kRipe;
  }
  return Tal::kArin;
}

constexpr std::optional<Tal> as0_tal(rir::Rir r) {
  switch (r) {
    case rir::Rir::kApnic: return Tal::kApnicAs0;
    case rir::Rir::kLacnic: return Tal::kLacnicAs0;
    default: return std::nullopt;
  }
}

std::string_view to_string(Tal t);

/// The set of TALs a validator has configured, as a small bitmask.
class TalSet {
 public:
  constexpr TalSet() = default;

  static constexpr TalSet defaults() {
    TalSet s;
    for (Tal t : kAllTals) {
      if (configured_by_default(t)) s.add(t);
    }
    return s;
  }
  static constexpr TalSet all() {
    TalSet s;
    for (Tal t : kAllTals) s.add(t);
    return s;
  }

  constexpr void add(Tal t) { bits_ |= uint8_t{1} << static_cast<int>(t); }
  constexpr bool has(Tal t) const {
    return bits_ & (uint8_t{1} << static_cast<int>(t));
  }

  friend constexpr bool operator==(TalSet, TalSet) = default;

 private:
  uint8_t bits_ = 0;
};

}  // namespace droplens::rpki
