#include "rpki/cert.hpp"

#include <algorithm>

namespace droplens::rpki {

namespace {

void append_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void append_intervals(std::string& out, const net::IntervalSet& set) {
  for (const net::IntervalSet::Interval& iv : set.intervals()) {
    append_u64(out, iv.begin);
    append_u64(out, iv.end);
  }
}

}  // namespace

std::string ResourceCert::to_be_signed() const {
  std::string out = "cert:" + subject + ":";
  append_u64(out, serial);
  append_u64(out, subject_key);
  append_u64(out, issuer_key);
  append_u64(out, static_cast<uint64_t>(validity.begin.days()));
  append_u64(out, static_cast<uint64_t>(validity.end.days()));
  append_intervals(out, resources);
  return out;
}

std::string SignedRoa::to_be_signed() const {
  std::string out = "roa:";
  append_u64(out, serial);
  append_u64(out, payload.prefix.network().value());
  append_u64(out, static_cast<uint64_t>(payload.prefix.length()));
  append_u64(out, static_cast<uint64_t>(payload.max_length));
  append_u64(out, payload.asn.value());
  return out;
}

std::string Manifest::to_be_signed() const {
  std::string out = "mft:";
  append_u64(out, manifest_number);
  append_u64(out, static_cast<uint64_t>(validity.begin.days()));
  append_u64(out, static_cast<uint64_t>(validity.end.days()));
  for (uint64_t d : object_digests) append_u64(out, d);
  return out;
}

std::string Crl::to_be_signed() const {
  std::string out = "crl:";
  append_u64(out, static_cast<uint64_t>(this_update.days()));
  for (uint64_t s : revoked_serials) append_u64(out, s);
  return out;
}

bool Crl::revoked(uint64_t serial) const {
  return std::find(revoked_serials.begin(), revoked_serials.end(), serial) !=
         revoked_serials.end();
}

const PublicationPoint* RpkiRepository::find(const std::string& name) const {
  for (const auto& [n, p] : points) {
    if (n == name) return &p;
  }
  return nullptr;
}

PublicationPoint* RpkiRepository::find(const std::string& name) {
  for (auto& [n, p] : points) {
    if (n == name) return &p;
  }
  return nullptr;
}

}  // namespace droplens::rpki
