#include "rpki/repository_builder.hpp"

#include <string>

#include "rpki/authority.hpp"

namespace droplens::rpki {

std::vector<TrustAnchorLocator> BuiltRepository::all_tals() const {
  std::vector<TrustAnchorLocator> out = production_tals;
  out.insert(out.end(), as0_tals.begin(), as0_tals.end());
  return out;
}

BuiltRepository build_repository(const RoaArchive& archive,
                                 const rir::Registry& registry, net::Date d) {
  BuiltRepository built;
  net::DateRange ta_validity{d - 3650, d + 3650};
  net::DateRange roa_validity{d - 1, d + 366};

  for (Tal tal : kAllTals) {
    // The trust anchor's resources: the administered space of the RIR
    // behind this TAL (the AS0 TALs cover the same space; their ROAs only
    // ever name free-pool prefixes inside it).
    rir::Rir rir = rir::Rir::kArin;
    for (rir::Rir r : rir::kAllRirs) {
      if (production_tal(r) == tal || as0_tal(r) == tal) rir = r;
    }
    net::IntervalSet resources = registry.administered(rir);
    if (resources.empty()) continue;

    std::string name(to_string(tal));
    uint64_t secret = 0x7a1'0000 + static_cast<uint64_t>(tal);
    CertificateAuthority ta = CertificateAuthority::trust_anchor(
        name, secret, std::move(resources), ta_validity);

    TalSet only;
    only.add(tal);
    size_t issued = 0;
    for (const Roa& roa : archive.live_roas(d, only)) {
      ta.issue_roa(roa, roa_validity);
      ++issued;
    }
    if (issued == 0 && is_as0_tal(tal)) continue;  // policy not live yet

    built.repository.points.emplace_back(name, ta.publish(d));
    if (is_as0_tal(tal)) {
      built.as0_tals.push_back(ta.tal());
    } else {
      built.production_tals.push_back(ta.tal());
    }
  }
  return built;
}

}  // namespace droplens::rpki
