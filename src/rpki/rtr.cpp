#include "rpki/rtr.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace droplens::rpki {

namespace {

constexpr uint8_t kVersion = 1;

void put_u8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}
void put_u32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool done() const { return pos_ >= bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t u8() {
    need(1);
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint16_t u16() { return static_cast<uint16_t>((u8() << 8) | u8()); }
  uint32_t u32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
    return v;
  }
  std::string text(size_t n) {
    need(n);
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
  }

 private:
  void need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw ParseError("RTR: truncated PDU");
    }
  }
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string serialize_pdu(const Pdu& pdu) {
  std::string out;
  put_u8(out, kVersion);
  put_u8(out, static_cast<uint8_t>(pdu.type));
  switch (pdu.type) {
    case PduType::kSerialNotify:
    case PduType::kSerialQuery:
      put_u16(out, pdu.session_id);
      put_u32(out, 12);
      put_u32(out, pdu.serial);
      break;
    case PduType::kResetQuery:
    case PduType::kCacheReset:
      put_u16(out, 0);
      put_u32(out, 8);
      break;
    case PduType::kCacheResponse:
      put_u16(out, pdu.session_id);
      put_u32(out, 8);
      break;
    case PduType::kIpv4Prefix:
      put_u16(out, 0);
      put_u32(out, 20);
      put_u8(out, pdu.announce ? 1 : 0);
      put_u8(out, static_cast<uint8_t>(pdu.vrp.prefix.length()));
      put_u8(out, static_cast<uint8_t>(pdu.vrp.max_length));
      put_u8(out, 0);
      put_u32(out, pdu.vrp.prefix.network().value());
      put_u32(out, pdu.vrp.asn.value());
      break;
    case PduType::kEndOfData:
      put_u16(out, pdu.session_id);
      put_u32(out, 24);
      put_u32(out, pdu.serial);
      put_u32(out, 3600);   // refresh
      put_u32(out, 600);    // retry
      put_u32(out, 7200);   // expire
      break;
    case PduType::kErrorReport:
      put_u16(out, pdu.error_code);
      put_u32(out, static_cast<uint32_t>(12 + pdu.error_text.size()));
      put_u32(out, static_cast<uint32_t>(pdu.error_text.size()));
      out += pdu.error_text;
      break;
  }
  return out;
}

std::vector<Pdu> parse_pdus(std::string_view bytes) {
  std::vector<Pdu> out;
  Reader r(bytes);
  while (!r.done()) {
    uint8_t version = r.u8();
    if (version != kVersion) {
      throw ParseError("RTR: unsupported version " + std::to_string(version));
    }
    uint8_t type = r.u8();
    uint16_t session_or_code = r.u16();
    uint32_t length = r.u32();
    if (length < 8) throw ParseError("RTR: bad PDU length");
    Pdu pdu;
    switch (static_cast<PduType>(type)) {
      case PduType::kSerialNotify:
      case PduType::kSerialQuery:
        if (length != 12) throw ParseError("RTR: bad serial PDU length");
        pdu.type = static_cast<PduType>(type);
        pdu.session_id = session_or_code;
        pdu.serial = r.u32();
        break;
      case PduType::kResetQuery:
      case PduType::kCacheReset:
        if (length != 8) throw ParseError("RTR: bad query PDU length");
        pdu.type = static_cast<PduType>(type);
        break;
      case PduType::kCacheResponse:
        if (length != 8) throw ParseError("RTR: bad response PDU length");
        pdu.type = PduType::kCacheResponse;
        pdu.session_id = session_or_code;
        break;
      case PduType::kIpv4Prefix: {
        if (length != 20) throw ParseError("RTR: bad prefix PDU length");
        pdu.type = PduType::kIpv4Prefix;
        uint8_t flags = r.u8();
        uint8_t plen = r.u8();
        uint8_t maxlen = r.u8();
        r.u8();  // zero
        uint32_t addr = r.u32();
        uint32_t asn = r.u32();
        if (plen > 32 || maxlen > 32 || maxlen < plen) {
          throw ParseError("RTR: bad prefix lengths");
        }
        pdu.announce = flags & 1;
        try {
          pdu.vrp = Vrp{net::Prefix(net::Ipv4(addr), plen),
                        static_cast<int>(maxlen), net::Asn(asn)};
        } catch (const InvariantError& e) {
          throw ParseError(std::string("RTR: ") + e.what());
        }
        break;
      }
      case PduType::kEndOfData:
        if (length != 24) throw ParseError("RTR: bad end-of-data length");
        pdu.type = PduType::kEndOfData;
        pdu.session_id = session_or_code;
        pdu.serial = r.u32();
        r.u32();  // refresh
        r.u32();  // retry
        r.u32();  // expire
        break;
      case PduType::kErrorReport: {
        pdu.type = PduType::kErrorReport;
        pdu.error_code = session_or_code;
        uint32_t text_len = r.u32();
        if (length != 12 + text_len) {
          throw ParseError("RTR: bad error-report length");
        }
        pdu.error_text = r.text(text_len);
        break;
      }
      default:
        throw ParseError("RTR: unknown PDU type " + std::to_string(type));
    }
    out.push_back(std::move(pdu));
  }
  return out;
}

// ---------------------------------------------------------------------------
// RtrServer

uint32_t RtrServer::update(std::vector<Vrp> vrps) {
  std::sort(vrps.begin(), vrps.end());
  vrps.erase(std::unique(vrps.begin(), vrps.end()), vrps.end());
  Diff diff;
  std::set_difference(vrps.begin(), vrps.end(), current_.begin(),
                      current_.end(), std::back_inserter(diff.announced));
  std::set_difference(current_.begin(), current_.end(), vrps.begin(),
                      vrps.end(), std::back_inserter(diff.withdrawn));
  current_ = std::move(vrps);
  ++serial_;
  diffs_[serial_] = std::move(diff);
  return serial_;
}

std::string RtrServer::handle(const Pdu& query) const {
  std::string out;
  auto emit = [&](const Pdu& pdu) { out += serialize_pdu(pdu); };
  auto end_of_data = [&] {
    Pdu eod;
    eod.type = PduType::kEndOfData;
    eod.session_id = session_id_;
    eod.serial = serial_;
    emit(eod);
  };
  auto prefix_pdu = [&](const Vrp& vrp, bool announce) {
    Pdu p;
    p.type = PduType::kIpv4Prefix;
    p.announce = announce;
    p.vrp = vrp;
    emit(p);
  };

  if (query.type == PduType::kResetQuery) {
    Pdu resp;
    resp.type = PduType::kCacheResponse;
    resp.session_id = session_id_;
    emit(resp);
    for (const Vrp& vrp : current_) prefix_pdu(vrp, true);
    end_of_data();
    return out;
  }
  if (query.type == PduType::kSerialQuery) {
    // RFC 1982 comparisons: a router serial "ahead" of ours, or behind by
    // more than we retain diffs for, gets a Cache Reset. Plain integer
    // compares here used to wedge every session into a full resync the
    // moment the serial wrapped past 2^32.
    if (query.session_id != session_id_ || serial_lt(serial_, query.serial) ||
        (serial_lt(query.serial, serial_) &&
         !diffs_.contains(query.serial + 1))) {
      Pdu reset;
      reset.type = PduType::kCacheReset;
      emit(reset);
      return out;
    }
    Pdu resp;
    resp.type = PduType::kCacheResponse;
    resp.session_id = session_id_;
    emit(resp);
    // Walk the serial space modulo 2^32; `s <= serial_` never terminates
    // across a wrap.
    for (uint32_t s = query.serial; s != serial_;) {
      ++s;
      const Diff& diff = diffs_.at(s);
      for (const Vrp& vrp : diff.announced) prefix_pdu(vrp, true);
      for (const Vrp& vrp : diff.withdrawn) prefix_pdu(vrp, false);
    }
    end_of_data();
    return out;
  }
  Pdu error;
  error.type = PduType::kErrorReport;
  error.error_code = 3;  // invalid request
  error.error_text = "unexpected PDU";
  return serialize_pdu(error);
}

std::string RtrServer::notify() const {
  Pdu pdu;
  pdu.type = PduType::kSerialNotify;
  pdu.session_id = session_id_;
  pdu.serial = serial_;
  return serialize_pdu(pdu);
}

// ---------------------------------------------------------------------------
// RtrClient

std::string RtrClient::poll() const {
  Pdu pdu;
  if (serial_ && session_id_) {
    pdu.type = PduType::kSerialQuery;
    pdu.session_id = *session_id_;
    pdu.serial = *serial_;
  } else {
    pdu.type = PduType::kResetQuery;
  }
  return serialize_pdu(pdu);
}

void RtrClient::consume(std::string_view bytes) {
  for (const Pdu& pdu : parse_pdus(bytes)) {
    switch (pdu.type) {
      case PduType::kCacheResponse:
        if (session_id_ && *session_id_ != pdu.session_id) {
          throw ParseError("RTR: session id changed mid-stream");
        }
        session_id_ = pdu.session_id;
        in_response_ = true;
        break;
      case PduType::kIpv4Prefix:
        if (!in_response_) {
          throw ParseError("RTR: prefix PDU outside cache response");
        }
        if (pdu.announce) {
          table_.insert(pdu.vrp);
        } else {
          table_.erase(pdu.vrp);
        }
        break;
      case PduType::kEndOfData:
        if (!in_response_) {
          throw ParseError("RTR: end-of-data outside cache response");
        }
        serial_ = pdu.serial;
        in_response_ = false;
        pending_recoveries_ = 0;  // a completed sync clears the retry budget
        break;
      case PduType::kCacheReset:
        // Full resync required: drop state; the next poll() is a reset query.
        reset_session();
        break;
      case PduType::kSerialNotify:
        break;  // informational; caller decides when to poll
      case PduType::kErrorReport:
        // Not fatal by itself: drop the session and resync, like a router
        // would. Only a cache that errors out on every attempt gets the
        // exception, after the retry budget runs dry.
        last_error_ = "cache reported error " +
                      std::to_string(pdu.error_code) + ": " + pdu.error_text;
        reset_session();
        if (pending_recoveries_ > kMaxRecoveries) {
          throw ParseError("RTR: giving up after " +
                           std::to_string(kMaxRecoveries) +
                           " failed resyncs; last: " + last_error_);
        }
        break;
      default:
        throw ParseError("RTR: unexpected PDU from cache");
    }
  }
}

void RtrClient::reset_session() {
  table_.clear();
  session_id_.reset();
  serial_.reset();
  in_response_ = false;
  ++pending_recoveries_;
}

Validity RtrClient::validate(const net::Prefix& p, net::Asn origin) const {
  bool covered = false;
  for (const Vrp& vrp : table_) {
    if (!vrp.prefix.contains(p)) continue;
    covered = true;
    if (origin == vrp.asn && !vrp.asn.is_as0() &&
        p.length() <= vrp.max_length) {
      return Validity::kValid;
    }
  }
  return covered ? Validity::kInvalid : Validity::kNotFound;
}

}  // namespace droplens::rpki
