// RIR AS0 policy engine (§2.3.1, §6.2.2).
//
// APNIC (2020-09-02) and LACNIC (2021-06-23) publish AS0 ROAs covering the
// unallocated space in their free pools, under dedicated AS0 TALs. This
// engine keeps an RoaArchive's AS0-TAL ROAs synchronized with a Registry's
// free pool, so the Fig 6/7 analyses can ask "would this hijack have been
// rejected had the AS0 TAL been configured".
#pragma once

#include <optional>

#include "net/date.hpp"
#include "rir/registry.hpp"
#include "rpki/archive.hpp"

namespace droplens::rpki {

/// The date an RIR's AS0 policy went live, per the paper; nullopt for RIRs
/// with no implemented policy (ARIN, RIPE NCC, AFRINIC as of the study end).
std::optional<net::Date> as0_policy_date(rir::Rir rir);

class As0PolicyEngine {
 public:
  As0PolicyEngine(const rir::Registry& registry, RoaArchive& archive)
      : registry_(registry), archive_(archive) {}

  /// Bring the AS0-TAL ROAs of `rir` in line with its free pool on `d`:
  /// publish ROAs for newly free space, revoke ROAs for newly allocated
  /// space. No-op (returns 0) for RIRs without an AS0 TAL or before their
  /// policy date. Returns the number of publish+revoke operations.
  size_t sync(rir::Rir rir, net::Date d);

  /// Run sync for every RIR whose policy is active on `d`.
  size_t sync_all(net::Date d);

 private:
  const rir::Registry& registry_;
  RoaArchive& archive_;
};

}  // namespace droplens::rpki
