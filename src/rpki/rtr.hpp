// RPKI-to-Router protocol (RFC 8210, IPv4 subset).
//
// The delivery path between a relying-party validator and a router doing
// ROV: the router opens a session, the cache streams validated ROA payloads
// (VRPs) and incremental updates keyed by serial numbers. We implement the
// PDU wire format (big-endian, version 1) and an in-memory cache/router
// pair, so the full pipeline — CA tree → validator → VRPs → RTR → ROV —
// runs end to end.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/asn.hpp"
#include "net/prefix.hpp"
#include "rpki/archive.hpp"

namespace droplens::rpki {

/// A validated ROA payload as carried on the wire.
struct Vrp {
  net::Prefix prefix;
  int max_length = 0;
  net::Asn asn;

  static Vrp from_roa(const Roa& roa) {
    return Vrp{roa.prefix, roa.max_length, roa.asn};
  }
  friend auto operator<=>(const Vrp&, const Vrp&) = default;
};

enum class PduType : uint8_t {
  kSerialNotify = 0,
  kSerialQuery = 1,
  kResetQuery = 2,
  kCacheResponse = 3,
  kIpv4Prefix = 4,
  kEndOfData = 7,
  kCacheReset = 8,
  kErrorReport = 10,
};

/// One parsed PDU (fields used depend on `type`).
struct Pdu {
  PduType type = PduType::kResetQuery;
  uint16_t session_id = 0;
  uint32_t serial = 0;          // serial notify/query, end of data
  bool announce = true;         // ipv4 prefix flag
  Vrp vrp;                      // ipv4 prefix payload
  uint16_t error_code = 0;      // error report
  std::string error_text;
};

/// RFC 1982 serial-number comparison on the 32-bit sequence space
/// (RFC 8210 §5.1): true iff `a` precedes `b`, i.e. the distance from `a`
/// forward to `b` is in (0, 2^31). Plain `<` breaks the serial-query path
/// at the 2^32 wraparound — a cache at serial 1 would treat a router at
/// serial 0xffffffff as being from the future and force a full resync.
constexpr bool serial_lt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}

/// Serialize one PDU to wire bytes (big-endian, protocol version 1).
std::string serialize_pdu(const Pdu& pdu);

/// Parse a buffer of concatenated PDUs. Throws ParseError on malformed
/// input (bad version, bad length, unknown type).
std::vector<Pdu> parse_pdus(std::string_view bytes);

/// The cache side (validator): holds the current VRP set under a serial,
/// remembers diffs so routers can sync incrementally.
class RtrServer {
 public:
  /// `start_serial` sets the serial the first update() increments from —
  /// production caches start at 0; tests start near 0xffffffff to exercise
  /// the wraparound.
  explicit RtrServer(uint16_t session_id, uint32_t start_serial = 0)
      : session_id_(session_id), serial_(start_serial) {}

  /// Install a new VRP snapshot; the serial increments and the diff from
  /// the previous snapshot is retained for serial queries.
  uint32_t update(std::vector<Vrp> vrps);

  /// Handle one client PDU (reset query / serial query), returning the
  /// response PDU stream as wire bytes.
  std::string handle(const Pdu& query) const;

  /// A Serial Notify PDU to push at clients after update().
  std::string notify() const;

  uint32_t serial() const { return serial_; }
  uint16_t session_id() const { return session_id_; }

 private:
  struct Diff {
    std::vector<Vrp> announced;
    std::vector<Vrp> withdrawn;
  };

  uint16_t session_id_;
  uint32_t serial_;  // wraps modulo 2^32; compare with serial_lt only
  std::vector<Vrp> current_;
  std::map<uint32_t, Diff> diffs_;  // serial s -> changes from s-1 to s
};

/// The router side: consumes PDU streams, maintains the VRP table, and
/// answers RFC 6811 validation queries from it.
///
/// Session recovery: a Cache Reset or an Error Report PDU does not throw —
/// real caches emit both mid-stream (RFC 8210 §8) and a router that aborts
/// on them never resyncs. Instead the client drops its session state and
/// answers the next poll() with a Reset Query, up to kMaxRecoveries
/// consecutive times; only when the cache keeps erroring past that bound
/// does consume() throw, so a wedged cache still surfaces as an error.
class RtrClient {
 public:
  /// Consecutive resync attempts tolerated before consume() gives up and
  /// throws. A successful End Of Data resets the counter.
  static constexpr int kMaxRecoveries = 3;

  /// Bytes the client sends to start or refresh a session.
  std::string poll() const;

  /// Feed a server response; updates the table. Throws ParseError on a
  /// protocol violation (wrong session id, data outside a cache response)
  /// or when the cache errors out kMaxRecoveries times in a row.
  void consume(std::string_view bytes);

  Validity validate(const net::Prefix& p, net::Asn origin) const;

  size_t table_size() const { return table_.size(); }
  std::optional<uint32_t> serial() const { return serial_; }
  std::vector<Vrp> table() const {
    return std::vector<Vrp>(table_.begin(), table_.end());
  }

  /// True after a Cache Reset / Error Report dropped the session; the next
  /// poll() is a Reset Query that rebuilds the table from scratch.
  bool needs_resync() const { return pending_recoveries_ > 0; }
  int pending_recoveries() const { return pending_recoveries_; }
  /// Text of the last Error Report received (empty if none).
  const std::string& last_error() const { return last_error_; }

 private:
  void reset_session();

  std::optional<uint16_t> session_id_;
  std::optional<uint32_t> serial_;
  bool in_response_ = false;
  int pending_recoveries_ = 0;
  std::string last_error_;
  std::set<Vrp> table_;
};

}  // namespace droplens::rpki
