// Build a full RPKI repository (CA trees, manifests, CRLs) from a day's
// live ROA set — the bridge between the archive-level world model and the
// object-level validator/RTR pipeline.
#pragma once

#include <vector>

#include "rir/registry.hpp"
#include "rpki/archive.hpp"
#include "rpki/cert.hpp"

namespace droplens::rpki {

struct BuiltRepository {
  RpkiRepository repository;
  std::vector<TrustAnchorLocator> production_tals;  // the five RIR roots
  std::vector<TrustAnchorLocator> as0_tals;         // APNIC/LACNIC AS0 roots

  std::vector<TrustAnchorLocator> all_tals() const;
};

/// Materialize the ROAs live on `d` as publication points: one trust anchor
/// per production TAL over that RIR's administered space, plus the separate
/// AS0 trust anchors. Every ROA is issued with a fresh EE certificate and
/// listed on its TA's manifest (validity [d, d+7]).
BuiltRepository build_repository(const RoaArchive& archive,
                                 const rir::Registry& registry, net::Date d);

}  // namespace droplens::rpki
