#include "rpki/roa_csv.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::rpki {

namespace {

std::string_view uri_host(Tal tal) {
  switch (tal) {
    case Tal::kAfrinic: return "rpki.afrinic.net";
    case Tal::kApnic: return "rpki.apnic.net";
    case Tal::kArin: return "rpki.arin.net";
    case Tal::kLacnic: return "repository.lacnic.net";
    case Tal::kRipe: return "rpki.ripe.net";
    case Tal::kApnicAs0: return "rpki-as0.apnic.net";
    case Tal::kLacnicAs0: return "rpki-as0.lacnic.net";
  }
  return "?";
}

Tal tal_from_uri(std::string_view uri) {
  for (Tal t : kAllTals) {
    if (uri.find(uri_host(t)) != std::string_view::npos) return t;
  }
  throw ParseError("unrecognized repository URI: '" + std::string(uri) + "'");
}

}  // namespace

std::string write_roa_csv(const RoaArchive& archive, net::Date d,
                          TalSet tals) {
  std::string out = "URI,ASN,IP Prefix,Max Length,Not Before,Not After\n";
  size_t n = 0;
  for (const RoaRecord& r : archive.live_records(d, tals)) {
    out += "rsync://" + std::string(uri_host(r.roa.tal)) + "/repository/" +
           std::to_string(n++) + ".roa,";
    out += r.roa.asn.to_string();
    out += ',';
    out += r.roa.prefix.to_string();
    out += ',';
    out += std::to_string(r.roa.max_length);
    out += ',';
    out += r.lifetime.begin.to_string();
    out += ',';
    out += r.lifetime.end == net::DateRange::unbounded()
               ? "never"
               : r.lifetime.end.to_string();
    out += '\n';
  }
  return out;
}

namespace {

RoaRecord parse_roa_row(std::string_view line) {
  std::vector<std::string_view> f = util::split(line, ',');
  if (f.size() < 6) {
    throw ParseError("short row: '" + std::string(line) + "'");
  }
  Tal tal = tal_from_uri(f[0]);
  std::string_view asn_text = util::trim(f[1]);
  if (asn_text.size() < 3 || (asn_text.substr(0, 2) != "AS")) {
    throw ParseError("bad ASN: '" + std::string(asn_text) + "'");
  }
  net::Asn asn(static_cast<uint32_t>(util::parse_u64(asn_text.substr(2))));
  net::Prefix prefix = net::Prefix::parse(util::trim(f[2]));
  int max_length = static_cast<int>(util::parse_u64(util::trim(f[3])));
  net::Date begin = net::Date::parse(util::trim(f[4]));
  std::string_view after = util::trim(f[5]);
  net::Date end = after == "never" ? net::DateRange::unbounded()
                                   : net::Date::parse(after);
  try {
    return RoaRecord{Roa(prefix, asn, tal, max_length),
                     net::DateRange{begin, end}};
  } catch (const InvariantError& e) {
    throw ParseError(e.what());
  }
}

}  // namespace

std::vector<RoaRecord> parse_roa_csv(std::string_view text,
                                     util::ParsePolicy policy,
                                     util::ParseReport* report) {
  obs::Span span("parse.roa_csv");
  std::vector<RoaRecord> out;
  bool first = true;
  size_t line_no = 0;
  size_t skipped = 0;
  for (std::string_view line : util::split(text, '\n')) {
    ++line_no;
    line = util::trim(line);
    if (line.empty()) continue;
    if (first && line.substr(0, 3) == "URI") {
      first = false;
      continue;  // header
    }
    first = false;
    try {
      out.push_back(parse_roa_row(line));
    } catch (const ParseError& e) {
      if (policy == util::ParsePolicy::kStrict) {
        throw ParseError("roas.csv line " + std::to_string(line_no) + ": " +
                         e.what());
      }
      if (report) report->add_error(line_no, e.what());
      ++skipped;
      continue;
    }
    if (report) report->add_parsed();
  }
  if (obs::Registry* reg = obs::installed()) {
    obs::Labels feed{{"feed", "roas"}};
    reg->counter("droplens_parse_records_total", feed).inc(out.size());
    reg->counter("droplens_parse_records_skipped_total", feed).inc(skipped);
  }
  return out;
}

size_t load_roa_csv(RoaArchive& archive, std::string_view text,
                    util::ParsePolicy policy, util::ParseReport* report) {
  size_t n = 0;
  for (const RoaRecord& r : parse_roa_csv(text, policy, report)) {
    archive.publish(r.roa, r.lifetime.begin);
    if (r.lifetime.end != net::DateRange::unbounded()) {
      archive.revoke(r.roa, r.lifetime.end);
    }
    ++n;
  }
  return n;
}

}  // namespace droplens::rpki
