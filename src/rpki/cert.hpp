// RPKI object model: resource certificates, signed ROA objects, manifests,
// and CRLs (RFC 6480/6487/6482/6486 — structurally faithful, with the
// simulated signature scheme of crypto.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/date.hpp"
#include "net/interval_set.hpp"
#include "rpki/crypto.hpp"
#include "rpki/roa.hpp"

namespace droplens::rpki {

/// An X.509-style resource certificate with RFC 3779 IPv4 resources.
struct ResourceCert {
  uint64_t serial = 0;
  std::string subject;       // CA name ("APNIC", "example-isp", ...)
  uint64_t subject_key = 0;  // the subject's public key id
  uint64_t issuer_key = 0;   // who signed this cert
  net::IntervalSet resources;  // IPv4 space the subject may sub-delegate/sign
  net::DateRange validity;
  Signature signature = 0;

  /// Canonical byte string the signature covers.
  std::string to_be_signed() const;

  bool valid_on(net::Date d) const { return validity.contains(d); }
};

/// A ROA as published: payload + one-time EE certificate, CMS-style.
struct SignedRoa {
  uint64_t serial = 0;        // EE certificate serial (CRL target)
  Roa payload;
  ResourceCert ee_cert;       // issued by the publishing CA
  Signature signature = 0;    // by the EE key over the payload

  std::string to_be_signed() const;
};

/// The per-CA manifest: names every current object so a validator can
/// detect withheld or replayed objects (RFC 6486).
struct Manifest {
  uint64_t manifest_number = 0;
  std::vector<uint64_t> object_digests;
  net::DateRange validity;
  Signature signature = 0;    // by the CA key

  std::string to_be_signed() const;
};

/// Certificate revocation list (RFC 6487 §5): serials the CA has revoked.
struct Crl {
  std::vector<uint64_t> revoked_serials;
  net::Date this_update;
  Signature signature = 0;    // by the CA key

  std::string to_be_signed() const;
  bool revoked(uint64_t serial) const;
};

/// Everything one certificate authority publishes.
struct PublicationPoint {
  ResourceCert ca_cert;       // this CA's certificate (issued by parent)
  std::vector<SignedRoa> roas;
  std::vector<ResourceCert> child_certs;  // delegations to child CAs
  Manifest manifest;
  Crl crl;
};

/// A trust anchor locator: the root key a validator is configured with.
struct TrustAnchorLocator {
  std::string name;
  uint64_t public_key = 0;
  std::string repository;     // name of the root publication point
};

/// The repository a validator fetches from: publication points by name.
struct RpkiRepository {
  std::vector<std::pair<std::string, PublicationPoint>> points;

  const PublicationPoint* find(const std::string& name) const;
  PublicationPoint* find(const std::string& name);
};

}  // namespace droplens::rpki
