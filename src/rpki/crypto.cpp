#include "rpki/crypto.hpp"

namespace droplens::rpki {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t mix(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

KeyPair KeyPair::derive(uint64_t secret) {
  return KeyPair{secret, mix(secret ^ 0x5ca1ab1eULL)};
}

uint64_t digest(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

Signature sign(uint64_t secret, std::string_view bytes) {
  // The signature binds the signer's PUBLIC identifier to the content, so
  // verification is stateless. (Anyone could forge this in the simulator —
  // tamper detection, which the validator tests exercise, still works
  // because tampered bytes no longer match the recorded signature.)
  return mix(mix(KeyPair::derive(secret).public_id) ^ digest(bytes));
}

bool verify(uint64_t public_id, std::string_view bytes, Signature sig) {
  return sig == mix(mix(public_id) ^ digest(bytes));
}

}  // namespace droplens::rpki
