#include "rpki/tal.hpp"

namespace droplens::rpki {

std::string_view to_string(Tal t) {
  switch (t) {
    case Tal::kAfrinic: return "AFRINIC";
    case Tal::kApnic: return "APNIC";
    case Tal::kArin: return "ARIN";
    case Tal::kLacnic: return "LACNIC";
    case Tal::kRipe: return "RIPE";
    case Tal::kApnicAs0: return "APNIC-AS0";
    case Tal::kLacnicAs0: return "LACNIC-AS0";
  }
  return "?";
}

}  // namespace droplens::rpki
