#include "rpki/authority.hpp"

#include "util/error.hpp"

namespace droplens::rpki {

CertificateAuthority CertificateAuthority::trust_anchor(
    std::string name, uint64_t secret, net::IntervalSet resources,
    net::DateRange validity) {
  CertificateAuthority ca;
  ca.name_ = std::move(name);
  ca.key_ = KeyPair::derive(secret);
  ca.cert_.serial = 0;
  ca.cert_.subject = ca.name_;
  ca.cert_.subject_key = ca.key_.public_id;
  ca.cert_.issuer_key = ca.key_.public_id;  // self-signed
  ca.cert_.resources = std::move(resources);
  ca.cert_.validity = validity;
  ca.cert_.signature = sign(ca.key_.secret, ca.cert_.to_be_signed());
  return ca;
}

CertificateAuthority CertificateAuthority::delegate(
    std::string name, uint64_t secret, net::IntervalSet resources,
    net::DateRange validity) {
  net::IntervalSet excess =
      net::IntervalSet::set_difference(resources, cert_.resources);
  if (!excess.empty()) {
    throw InvariantError("delegation overclaims parent resources");
  }
  return delegate_unchecked(std::move(name), secret, std::move(resources),
                            validity);
}

CertificateAuthority CertificateAuthority::delegate_unchecked(
    std::string name, uint64_t secret, net::IntervalSet resources,
    net::DateRange validity) {
  CertificateAuthority child;
  child.name_ = std::move(name);
  child.key_ = KeyPair::derive(secret);
  child.cert_.serial = next_serial_++;
  child.cert_.subject = child.name_;
  child.cert_.subject_key = child.key_.public_id;
  child.cert_.issuer_key = key_.public_id;
  child.cert_.resources = std::move(resources);
  child.cert_.validity = validity;
  child.cert_.signature = sign(key_.secret, child.cert_.to_be_signed());
  child_certs_.push_back(child.cert_);
  return child;
}

uint64_t CertificateAuthority::issue_roa(const Roa& payload,
                                         net::DateRange validity) {
  SignedRoa obj;
  obj.serial = next_serial_++;
  obj.payload = payload;
  // One-time EE certificate bound to exactly the ROA's resources.
  KeyPair ee = KeyPair::derive(key_.secret ^ (obj.serial * 0x9e37ULL));
  obj.ee_cert.serial = obj.serial;
  obj.ee_cert.subject = name_ + "-ee-" + std::to_string(obj.serial);
  obj.ee_cert.subject_key = ee.public_id;
  obj.ee_cert.issuer_key = key_.public_id;
  obj.ee_cert.resources.insert(payload.prefix);
  obj.ee_cert.validity = validity;
  obj.ee_cert.signature = sign(key_.secret, obj.ee_cert.to_be_signed());
  obj.signature = sign(ee.secret, obj.to_be_signed());
  roas_.push_back(std::move(obj));
  return roas_.back().serial;
}

void CertificateAuthority::revoke(uint64_t serial) {
  revoked_.push_back(serial);
}

PublicationPoint CertificateAuthority::publish(net::Date now) const {
  PublicationPoint point;
  point.ca_cert = cert_;
  point.roas = roas_;
  point.child_certs = child_certs_;

  point.crl.revoked_serials = revoked_;
  point.crl.this_update = now;
  point.crl.signature = sign(key_.secret, point.crl.to_be_signed());

  point.manifest.manifest_number = manifest_number_;
  for (const SignedRoa& r : point.roas) {
    point.manifest.object_digests.push_back(digest(r.to_be_signed()));
  }
  for (const ResourceCert& c : point.child_certs) {
    point.manifest.object_digests.push_back(digest(c.to_be_signed()));
  }
  point.manifest.validity = net::DateRange{now, now + 7};  // weekly refresh
  point.manifest.signature =
      sign(key_.secret, point.manifest.to_be_signed());
  return point;
}

TrustAnchorLocator CertificateAuthority::tal() const {
  return TrustAnchorLocator{name_, key_.public_id, name_};
}

}  // namespace droplens::rpki
