// Day-indexed ROA archive with RFC 6811 route-origin validation.
//
// Models RIPE's daily RPKI archive (§3): every ROA ever published, with its
// publication/revocation dates, so analyses can validate any announcement
// against the ROA set of any day — under any set of configured TALs.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "net/date.hpp"
#include "net/interval_set.hpp"
#include "net/prefix_trie.hpp"
#include "rpki/roa.hpp"

namespace droplens::rpki {

/// RFC 6811 validation states.
enum class Validity : uint8_t { kValid, kInvalid, kNotFound };

std::string_view to_string(Validity v);

/// Pure validation over an explicit covering-ROA set: kNotFound if the set
/// is empty, kValid if any ROA matches, else kInvalid.
Validity validate(const std::vector<Roa>& covering, const net::Prefix& p,
                  net::Asn origin);

/// One published ROA plus its lifetime in the repository.
struct RoaRecord {
  Roa roa;
  net::DateRange lifetime;  // [published, revoked)

  bool live_on(net::Date d) const { return lifetime.contains(d); }
};

class RoaArchive {
 public:
  RoaArchive() = default;

  /// Publish `roa` on `d`. Returns its record index (stable).
  size_t publish(Roa roa, net::Date d);

  /// Revoke the live ROA equal to `roa` on `d`. Returns false if none live.
  bool revoke(const Roa& roa, net::Date d);

  /// ROAs live on `d` under a configured TAL that cover `p`.
  std::vector<Roa> covering(const net::Prefix& p, net::Date d,
                            TalSet tals = TalSet::defaults()) const;

  /// RFC 6811 validation of (p, origin) against day `d`'s ROA set.
  Validity validate_route(const net::Prefix& p, net::Asn origin, net::Date d,
                          TalSet tals = TalSet::defaults()) const;

  /// True if any live ROA on `d` covers `p` (i.e. `p` is "RPKI-signed").
  /// AS0-TAL ROAs only count if their TAL is in `tals`.
  bool signed_on(const net::Prefix& p, net::Date d,
                 TalSet tals = TalSet::defaults()) const;

  /// First day on which `p` was covered by a live ROA (under `tals`);
  /// nullopt if never. Scans record lifetimes — no day iteration.
  std::optional<net::Date> first_signed(const net::Prefix& p,
                                        TalSet tals = TalSet::defaults()) const;

  /// The ROA records (live and revoked) whose prefix covers or equals `p`.
  std::vector<RoaRecord> records_covering(const net::Prefix& p) const;

  /// All live ROAs on `d` under `tals`.
  std::vector<Roa> live_roas(net::Date d,
                             TalSet tals = TalSet::defaults()) const;

  /// All live records (ROA + lifetime) on `d` under `tals`.
  std::vector<RoaRecord> live_records(net::Date d,
                                      TalSet tals = TalSet::defaults()) const;

  /// Every record ever published (live and revoked), all TALs. The event
  /// replayer lowers these into publish/revoke events; order follows the
  /// prefix trie walk (nondecreasing first address).
  std::vector<RoaRecord> all_records() const;

  /// Address space covered by live ROAs on `d`. `as0_only` restricts to AS0
  /// ROAs; `non_as0_only` to ROAs with a real origin ASN (Fig 5's
  /// "signed, non-AS0" series).
  enum class Filter : uint8_t { kAll, kAs0Only, kNonAs0Only };
  net::IntervalSet signed_space(net::Date d, TalSet tals = TalSet::defaults(),
                                Filter filter = Filter::kAll) const;

  size_t total_published() const { return total_; }

 private:
  net::PrefixMap<std::vector<RoaRecord>> by_prefix_;
  size_t total_ = 0;
};

}  // namespace droplens::rpki
