// Route Origin Authorization.
#pragma once

#include <string>

#include "net/asn.hpp"
#include "net/prefix.hpp"
#include "rpki/tal.hpp"

namespace droplens::rpki {

/// A ROA: "prefix (up to maxLength) may be originated by asn", published
/// under a trust anchor. An AS0 ROA (asn == AS0) asserts the opposite — the
/// prefix and everything under it must not be routed (RFC 6483 §4 / RFC
/// 7607).
struct Roa {
  net::Prefix prefix;
  int max_length = 0;  // normalized to >= prefix.length() at construction
  net::Asn asn;
  Tal tal = Tal::kRipe;

  Roa() = default;
  /// `max_length` of 0 means "not present" = prefix length (RFC 6482).
  /// Throws InvariantError if max_length is outside [prefix length, 32].
  Roa(net::Prefix prefix, net::Asn asn, Tal tal, int max_length = 0);

  /// Does this ROA cover `p` (regardless of origin/length match)?
  bool covers(const net::Prefix& p) const { return prefix.contains(p); }

  /// RFC 6811 match: covered, origin equal, announced length <= maxLength.
  /// An AS0 ROA never matches anything (AS0 appears in no valid AS path).
  bool matches(const net::Prefix& p, net::Asn origin) const {
    return covers(p) && p.length() <= max_length && origin == asn &&
           !asn.is_as0();
  }

  bool is_as0() const { return asn.is_as0(); }

  std::string to_string() const;

  friend bool operator==(const Roa&, const Roa&) = default;
};

}  // namespace droplens::rpki
