#include "rpki/archive.hpp"

namespace droplens::rpki {

std::string_view to_string(Validity v) {
  switch (v) {
    case Validity::kValid: return "valid";
    case Validity::kInvalid: return "invalid";
    case Validity::kNotFound: return "not-found";
  }
  return "?";
}

Validity validate(const std::vector<Roa>& covering, const net::Prefix& p,
                  net::Asn origin) {
  if (covering.empty()) return Validity::kNotFound;
  for (const Roa& roa : covering) {
    if (roa.matches(p, origin)) return Validity::kValid;
  }
  return Validity::kInvalid;
}

size_t RoaArchive::publish(Roa roa, net::Date d) {
  auto& records = by_prefix_[roa.prefix];
  records.push_back(
      RoaRecord{roa, net::DateRange{d, net::DateRange::unbounded()}});
  return total_++;
}

bool RoaArchive::revoke(const Roa& roa, net::Date d) {
  auto* records = by_prefix_.find(roa.prefix);
  if (!records) return false;
  for (RoaRecord& r : *records) {
    if (r.roa == roa && r.live_on(d)) {
      r.lifetime.end = d;
      return true;
    }
  }
  return false;
}

std::vector<Roa> RoaArchive::covering(const net::Prefix& p, net::Date d,
                                      TalSet tals) const {
  std::vector<Roa> out;
  by_prefix_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        for (const RoaRecord& r : records) {
          if (r.live_on(d) && tals.has(r.roa.tal)) out.push_back(r.roa);
        }
      });
  return out;
}

Validity RoaArchive::validate_route(const net::Prefix& p, net::Asn origin,
                                    net::Date d, TalSet tals) const {
  return validate(covering(p, d, tals), p, origin);
}

bool RoaArchive::signed_on(const net::Prefix& p, net::Date d,
                           TalSet tals) const {
  bool found = false;
  by_prefix_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        if (found) return;
        for (const RoaRecord& r : records) {
          if (r.live_on(d) && tals.has(r.roa.tal)) {
            found = true;
            return;
          }
        }
      });
  return found;
}

std::optional<net::Date> RoaArchive::first_signed(const net::Prefix& p,
                                                  TalSet tals) const {
  std::optional<net::Date> best;
  by_prefix_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        for (const RoaRecord& r : records) {
          if (tals.has(r.roa.tal) &&
              (!best || r.lifetime.begin < *best)) {
            best = r.lifetime.begin;
          }
        }
      });
  return best;
}

std::vector<RoaRecord> RoaArchive::records_covering(
    const net::Prefix& p) const {
  std::vector<RoaRecord> out;
  by_prefix_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        out.insert(out.end(), records.begin(), records.end());
      });
  return out;
}

std::vector<Roa> RoaArchive::live_roas(net::Date d, TalSet tals) const {
  std::vector<Roa> out;
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        for (const RoaRecord& r : records) {
          if (r.live_on(d) && tals.has(r.roa.tal)) out.push_back(r.roa);
        }
      });
  return out;
}

std::vector<RoaRecord> RoaArchive::live_records(net::Date d,
                                                TalSet tals) const {
  std::vector<RoaRecord> out;
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        for (const RoaRecord& r : records) {
          if (r.live_on(d) && tals.has(r.roa.tal)) out.push_back(r);
        }
      });
  return out;
}

std::vector<RoaRecord> RoaArchive::all_records() const {
  std::vector<RoaRecord> out;
  out.reserve(total_);
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<RoaRecord>& records) {
        out.insert(out.end(), records.begin(), records.end());
      });
  return out;
}

net::IntervalSet RoaArchive::signed_space(net::Date d, TalSet tals,
                                          Filter filter) const {
  net::IntervalSet out;
  by_prefix_.for_each(
      [&](const net::Prefix& p, const std::vector<RoaRecord>& records) {
        for (const RoaRecord& r : records) {
          if (!r.live_on(d) || !tals.has(r.roa.tal)) continue;
          if (filter == Filter::kAs0Only && !r.roa.is_as0()) continue;
          if (filter == Filter::kNonAs0Only && r.roa.is_as0()) continue;
          out.insert(p);
          break;
        }
      });
  return out;
}

}  // namespace droplens::rpki
