file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_maxlength.dir/bench_ext_maxlength.cpp.o"
  "CMakeFiles/bench_ext_maxlength.dir/bench_ext_maxlength.cpp.o.d"
  "bench_ext_maxlength"
  "bench_ext_maxlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_maxlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
