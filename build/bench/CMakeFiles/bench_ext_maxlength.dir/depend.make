# Empty dependencies file for bench_ext_maxlength.
# This may be replaced when dependencies are built.
