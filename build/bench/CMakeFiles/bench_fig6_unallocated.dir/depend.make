# Empty dependencies file for bench_fig6_unallocated.
# This may be replaced when dependencies are built.
