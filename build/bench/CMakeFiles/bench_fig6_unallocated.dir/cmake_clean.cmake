file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_unallocated.dir/bench_fig6_unallocated.cpp.o"
  "CMakeFiles/bench_fig6_unallocated.dir/bench_fig6_unallocated.cpp.o.d"
  "bench_fig6_unallocated"
  "bench_fig6_unallocated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_unallocated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
