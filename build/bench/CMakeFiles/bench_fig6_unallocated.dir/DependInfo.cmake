
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_unallocated.cpp" "bench/CMakeFiles/bench_fig6_unallocated.dir/bench_fig6_unallocated.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_unallocated.dir/bench_fig6_unallocated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/droplens_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/droplens_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/droplens_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/irr/CMakeFiles/droplens_irr.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/droplens_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/droplens_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/drop/CMakeFiles/droplens_drop.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
