file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_irr_auth.dir/bench_ext_irr_auth.cpp.o"
  "CMakeFiles/bench_ext_irr_auth.dir/bench_ext_irr_auth.cpp.o.d"
  "bench_ext_irr_auth"
  "bench_ext_irr_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_irr_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
