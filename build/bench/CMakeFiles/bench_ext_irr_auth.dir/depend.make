# Empty dependencies file for bench_ext_irr_auth.
# This may be replaced when dependencies are built.
