file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_serial_hijackers.dir/bench_ext_serial_hijackers.cpp.o"
  "CMakeFiles/bench_ext_serial_hijackers.dir/bench_ext_serial_hijackers.cpp.o.d"
  "bench_ext_serial_hijackers"
  "bench_ext_serial_hijackers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_serial_hijackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
