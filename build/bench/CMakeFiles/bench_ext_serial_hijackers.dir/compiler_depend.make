# Empty compiler generated dependencies file for bench_ext_serial_hijackers.
# This may be replaced when dependencies are built.
