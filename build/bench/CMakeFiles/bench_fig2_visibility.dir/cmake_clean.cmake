file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_visibility.dir/bench_fig2_visibility.cpp.o"
  "CMakeFiles/bench_fig2_visibility.dir/bench_fig2_visibility.cpp.o.d"
  "bench_fig2_visibility"
  "bench_fig2_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
