file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_roa_status.dir/bench_fig5_roa_status.cpp.o"
  "CMakeFiles/bench_fig5_roa_status.dir/bench_fig5_roa_status.cpp.o.d"
  "bench_fig5_roa_status"
  "bench_fig5_roa_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_roa_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
