# Empty dependencies file for bench_fig5_roa_status.
# This may be replaced when dependencies are built.
