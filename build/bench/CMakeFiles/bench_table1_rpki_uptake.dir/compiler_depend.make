# Empty compiler generated dependencies file for bench_table1_rpki_uptake.
# This may be replaced when dependencies are built.
