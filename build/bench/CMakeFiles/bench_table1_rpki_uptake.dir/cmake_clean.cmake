file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rpki_uptake.dir/bench_table1_rpki_uptake.cpp.o"
  "CMakeFiles/bench_table1_rpki_uptake.dir/bench_table1_rpki_uptake.cpp.o.d"
  "bench_table1_rpki_uptake"
  "bench_table1_rpki_uptake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rpki_uptake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
