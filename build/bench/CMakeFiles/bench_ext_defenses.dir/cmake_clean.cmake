file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_defenses.dir/bench_ext_defenses.cpp.o"
  "CMakeFiles/bench_ext_defenses.dir/bench_ext_defenses.cpp.o.d"
  "bench_ext_defenses"
  "bench_ext_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
