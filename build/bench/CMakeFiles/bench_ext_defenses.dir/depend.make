# Empty dependencies file for bench_ext_defenses.
# This may be replaced when dependencies are built.
