file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_alarms.dir/bench_ext_alarms.cpp.o"
  "CMakeFiles/bench_ext_alarms.dir/bench_ext_alarms.cpp.o.d"
  "bench_ext_alarms"
  "bench_ext_alarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_alarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
