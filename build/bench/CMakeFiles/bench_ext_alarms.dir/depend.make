# Empty dependencies file for bench_ext_alarms.
# This may be replaced when dependencies are built.
