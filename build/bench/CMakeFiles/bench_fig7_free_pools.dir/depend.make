# Empty dependencies file for bench_fig7_free_pools.
# This may be replaced when dependencies are built.
