file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_free_pools.dir/bench_fig7_free_pools.cpp.o"
  "CMakeFiles/bench_fig7_free_pools.dir/bench_fig7_free_pools.cpp.o.d"
  "bench_fig7_free_pools"
  "bench_fig7_free_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_free_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
