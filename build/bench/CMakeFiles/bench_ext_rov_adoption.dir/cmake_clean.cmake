file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rov_adoption.dir/bench_ext_rov_adoption.cpp.o"
  "CMakeFiles/bench_ext_rov_adoption.dir/bench_ext_rov_adoption.cpp.o.d"
  "bench_ext_rov_adoption"
  "bench_ext_rov_adoption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rov_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
