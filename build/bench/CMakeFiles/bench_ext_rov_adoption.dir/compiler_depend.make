# Empty compiler generated dependencies file for bench_ext_rov_adoption.
# This may be replaced when dependencies are built.
