# Empty compiler generated dependencies file for bench_perf_substrates.
# This may be replaced when dependencies are built.
