file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_substrates.dir/bench_perf_substrates.cpp.o"
  "CMakeFiles/bench_perf_substrates.dir/bench_perf_substrates.cpp.o.d"
  "bench_perf_substrates"
  "bench_perf_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
