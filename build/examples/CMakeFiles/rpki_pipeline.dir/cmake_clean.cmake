file(REMOVE_RECURSE
  "CMakeFiles/rpki_pipeline.dir/rpki_pipeline.cpp.o"
  "CMakeFiles/rpki_pipeline.dir/rpki_pipeline.cpp.o.d"
  "rpki_pipeline"
  "rpki_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpki_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
