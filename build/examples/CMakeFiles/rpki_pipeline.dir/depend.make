# Empty dependencies file for rpki_pipeline.
# This may be replaced when dependencies are built.
