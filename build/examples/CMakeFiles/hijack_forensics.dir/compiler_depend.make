# Empty compiler generated dependencies file for hijack_forensics.
# This may be replaced when dependencies are built.
