# Empty dependencies file for as0_whatif.
# This may be replaced when dependencies are built.
