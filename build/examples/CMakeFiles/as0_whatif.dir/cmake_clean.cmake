file(REMOVE_RECURSE
  "CMakeFiles/as0_whatif.dir/as0_whatif.cpp.o"
  "CMakeFiles/as0_whatif.dir/as0_whatif.cpp.o.d"
  "as0_whatif"
  "as0_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as0_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
