# Empty compiler generated dependencies file for irr_hygiene.
# This may be replaced when dependencies are built.
