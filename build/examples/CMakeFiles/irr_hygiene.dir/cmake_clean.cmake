file(REMOVE_RECURSE
  "CMakeFiles/irr_hygiene.dir/irr_hygiene.cpp.o"
  "CMakeFiles/irr_hygiene.dir/irr_hygiene.cpp.o.d"
  "irr_hygiene"
  "irr_hygiene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irr_hygiene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
