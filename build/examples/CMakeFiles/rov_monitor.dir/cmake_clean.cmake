file(REMOVE_RECURSE
  "CMakeFiles/rov_monitor.dir/rov_monitor.cpp.o"
  "CMakeFiles/rov_monitor.dir/rov_monitor.cpp.o.d"
  "rov_monitor"
  "rov_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rov_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
