# Empty dependencies file for rov_monitor.
# This may be replaced when dependencies are built.
