
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyses.cpp" "tests/CMakeFiles/droplens_tests.dir/test_analyses.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_analyses.cpp.o.d"
  "/root/repo/tests/test_as0_policy.cpp" "tests/CMakeFiles/droplens_tests.dir/test_as0_policy.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_as0_policy.cpp.o.d"
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/droplens_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_classifier.cpp" "tests/CMakeFiles/droplens_tests.dir/test_classifier.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_classifier.cpp.o.d"
  "/root/repo/tests/test_date.cpp" "tests/CMakeFiles/droplens_tests.dir/test_date.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_date.cpp.o.d"
  "/root/repo/tests/test_drop.cpp" "tests/CMakeFiles/droplens_tests.dir/test_drop.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_drop.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/droplens_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_formats.cpp" "tests/CMakeFiles/droplens_tests.dir/test_formats.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_formats.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/droplens_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interval_set.cpp" "tests/CMakeFiles/droplens_tests.dir/test_interval_set.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_interval_set.cpp.o.d"
  "/root/repo/tests/test_irr.cpp" "tests/CMakeFiles/droplens_tests.dir/test_irr.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_irr.cpp.o.d"
  "/root/repo/tests/test_irr_snapshots.cpp" "tests/CMakeFiles/droplens_tests.dir/test_irr_snapshots.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_irr_snapshots.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/droplens_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_mrt.cpp" "tests/CMakeFiles/droplens_tests.dir/test_mrt.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_mrt.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/droplens_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_parser_fuzz.cpp" "tests/CMakeFiles/droplens_tests.dir/test_parser_fuzz.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_parser_fuzz.cpp.o.d"
  "/root/repo/tests/test_prefix_trie.cpp" "tests/CMakeFiles/droplens_tests.dir/test_prefix_trie.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_prefix_trie.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/droplens_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rir.cpp" "tests/CMakeFiles/droplens_tests.dir/test_rir.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_rir.cpp.o.d"
  "/root/repo/tests/test_rpki.cpp" "tests/CMakeFiles/droplens_tests.dir/test_rpki.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_rpki.cpp.o.d"
  "/root/repo/tests/test_rpki_pipeline.cpp" "tests/CMakeFiles/droplens_tests.dir/test_rpki_pipeline.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_rpki_pipeline.cpp.o.d"
  "/root/repo/tests/test_seed_sweep.cpp" "tests/CMakeFiles/droplens_tests.dir/test_seed_sweep.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_seed_sweep.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/droplens_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/droplens_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/droplens_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_whois.cpp" "tests/CMakeFiles/droplens_tests.dir/test_whois.cpp.o" "gcc" "tests/CMakeFiles/droplens_tests.dir/test_whois.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/droplens_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/droplens_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/droplens_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/irr/CMakeFiles/droplens_irr.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/droplens_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/droplens_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/drop/CMakeFiles/droplens_drop.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
