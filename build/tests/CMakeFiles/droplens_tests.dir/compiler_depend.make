# Empty compiler generated dependencies file for droplens_tests.
# This may be replaced when dependencies are built.
