file(REMOVE_RECURSE
  "CMakeFiles/droplens_paper_scale_test.dir/test_paper_scale.cpp.o"
  "CMakeFiles/droplens_paper_scale_test.dir/test_paper_scale.cpp.o.d"
  "droplens_paper_scale_test"
  "droplens_paper_scale_test.pdb"
  "droplens_paper_scale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_paper_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
