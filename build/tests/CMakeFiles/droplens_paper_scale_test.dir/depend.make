# Empty dependencies file for droplens_paper_scale_test.
# This may be replaced when dependencies are built.
