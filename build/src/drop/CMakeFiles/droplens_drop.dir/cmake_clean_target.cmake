file(REMOVE_RECURSE
  "libdroplens_drop.a"
)
