
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drop/category.cpp" "src/drop/CMakeFiles/droplens_drop.dir/category.cpp.o" "gcc" "src/drop/CMakeFiles/droplens_drop.dir/category.cpp.o.d"
  "/root/repo/src/drop/drop_list.cpp" "src/drop/CMakeFiles/droplens_drop.dir/drop_list.cpp.o" "gcc" "src/drop/CMakeFiles/droplens_drop.dir/drop_list.cpp.o.d"
  "/root/repo/src/drop/feed.cpp" "src/drop/CMakeFiles/droplens_drop.dir/feed.cpp.o" "gcc" "src/drop/CMakeFiles/droplens_drop.dir/feed.cpp.o.d"
  "/root/repo/src/drop/sbl.cpp" "src/drop/CMakeFiles/droplens_drop.dir/sbl.cpp.o" "gcc" "src/drop/CMakeFiles/droplens_drop.dir/sbl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
