# Empty dependencies file for droplens_drop.
# This may be replaced when dependencies are built.
