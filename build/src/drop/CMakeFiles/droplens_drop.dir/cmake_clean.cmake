file(REMOVE_RECURSE
  "CMakeFiles/droplens_drop.dir/category.cpp.o"
  "CMakeFiles/droplens_drop.dir/category.cpp.o.d"
  "CMakeFiles/droplens_drop.dir/drop_list.cpp.o"
  "CMakeFiles/droplens_drop.dir/drop_list.cpp.o.d"
  "CMakeFiles/droplens_drop.dir/feed.cpp.o"
  "CMakeFiles/droplens_drop.dir/feed.cpp.o.d"
  "CMakeFiles/droplens_drop.dir/sbl.cpp.o"
  "CMakeFiles/droplens_drop.dir/sbl.cpp.o.d"
  "libdroplens_drop.a"
  "libdroplens_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
