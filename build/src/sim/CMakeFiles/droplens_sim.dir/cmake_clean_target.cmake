file(REMOVE_RECURSE
  "libdroplens_sim.a"
)
