# Empty compiler generated dependencies file for droplens_sim.
# This may be replaced when dependencies are built.
