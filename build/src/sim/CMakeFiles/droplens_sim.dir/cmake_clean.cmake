file(REMOVE_RECURSE
  "CMakeFiles/droplens_sim.dir/gen_case_study.cpp.o"
  "CMakeFiles/droplens_sim.dir/gen_case_study.cpp.o.d"
  "CMakeFiles/droplens_sim.dir/gen_drop.cpp.o"
  "CMakeFiles/droplens_sim.dir/gen_drop.cpp.o.d"
  "CMakeFiles/droplens_sim.dir/generator.cpp.o"
  "CMakeFiles/droplens_sim.dir/generator.cpp.o.d"
  "CMakeFiles/droplens_sim.dir/rng.cpp.o"
  "CMakeFiles/droplens_sim.dir/rng.cpp.o.d"
  "CMakeFiles/droplens_sim.dir/scenario.cpp.o"
  "CMakeFiles/droplens_sim.dir/scenario.cpp.o.d"
  "libdroplens_sim.a"
  "libdroplens_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
