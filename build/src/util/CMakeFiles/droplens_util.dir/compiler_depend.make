# Empty compiler generated dependencies file for droplens_util.
# This may be replaced when dependencies are built.
