file(REMOVE_RECURSE
  "CMakeFiles/droplens_util.dir/csv.cpp.o"
  "CMakeFiles/droplens_util.dir/csv.cpp.o.d"
  "CMakeFiles/droplens_util.dir/strings.cpp.o"
  "CMakeFiles/droplens_util.dir/strings.cpp.o.d"
  "CMakeFiles/droplens_util.dir/text_table.cpp.o"
  "CMakeFiles/droplens_util.dir/text_table.cpp.o.d"
  "libdroplens_util.a"
  "libdroplens_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
