file(REMOVE_RECURSE
  "libdroplens_util.a"
)
