
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alarms.cpp" "src/core/CMakeFiles/droplens_core.dir/alarms.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/alarms.cpp.o.d"
  "/root/repo/src/core/as0_analysis.cpp" "src/core/CMakeFiles/droplens_core.dir/as0_analysis.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/as0_analysis.cpp.o.d"
  "/root/repo/src/core/case_study.cpp" "src/core/CMakeFiles/droplens_core.dir/case_study.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/case_study.cpp.o.d"
  "/root/repo/src/core/classification.cpp" "src/core/CMakeFiles/droplens_core.dir/classification.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/classification.cpp.o.d"
  "/root/repo/src/core/defenses.cpp" "src/core/CMakeFiles/droplens_core.dir/defenses.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/defenses.cpp.o.d"
  "/root/repo/src/core/drop_index.cpp" "src/core/CMakeFiles/droplens_core.dir/drop_index.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/drop_index.cpp.o.d"
  "/root/repo/src/core/impact.cpp" "src/core/CMakeFiles/droplens_core.dir/impact.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/impact.cpp.o.d"
  "/root/repo/src/core/irr_analysis.cpp" "src/core/CMakeFiles/droplens_core.dir/irr_analysis.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/irr_analysis.cpp.o.d"
  "/root/repo/src/core/irr_whatif.cpp" "src/core/CMakeFiles/droplens_core.dir/irr_whatif.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/irr_whatif.cpp.o.d"
  "/root/repo/src/core/maxlength.cpp" "src/core/CMakeFiles/droplens_core.dir/maxlength.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/maxlength.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/droplens_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/report.cpp.o.d"
  "/root/repo/src/core/roa_status.cpp" "src/core/CMakeFiles/droplens_core.dir/roa_status.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/roa_status.cpp.o.d"
  "/root/repo/src/core/rpki_uptake.cpp" "src/core/CMakeFiles/droplens_core.dir/rpki_uptake.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/rpki_uptake.cpp.o.d"
  "/root/repo/src/core/serial_hijackers.cpp" "src/core/CMakeFiles/droplens_core.dir/serial_hijackers.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/serial_hijackers.cpp.o.d"
  "/root/repo/src/core/visibility.cpp" "src/core/CMakeFiles/droplens_core.dir/visibility.cpp.o" "gcc" "src/core/CMakeFiles/droplens_core.dir/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/droplens_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/irr/CMakeFiles/droplens_irr.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/droplens_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/droplens_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/drop/CMakeFiles/droplens_drop.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
