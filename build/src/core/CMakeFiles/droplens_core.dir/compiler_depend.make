# Empty compiler generated dependencies file for droplens_core.
# This may be replaced when dependencies are built.
