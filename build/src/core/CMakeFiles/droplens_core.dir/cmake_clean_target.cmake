file(REMOVE_RECURSE
  "libdroplens_core.a"
)
