file(REMOVE_RECURSE
  "CMakeFiles/droplens_core.dir/alarms.cpp.o"
  "CMakeFiles/droplens_core.dir/alarms.cpp.o.d"
  "CMakeFiles/droplens_core.dir/as0_analysis.cpp.o"
  "CMakeFiles/droplens_core.dir/as0_analysis.cpp.o.d"
  "CMakeFiles/droplens_core.dir/case_study.cpp.o"
  "CMakeFiles/droplens_core.dir/case_study.cpp.o.d"
  "CMakeFiles/droplens_core.dir/classification.cpp.o"
  "CMakeFiles/droplens_core.dir/classification.cpp.o.d"
  "CMakeFiles/droplens_core.dir/defenses.cpp.o"
  "CMakeFiles/droplens_core.dir/defenses.cpp.o.d"
  "CMakeFiles/droplens_core.dir/drop_index.cpp.o"
  "CMakeFiles/droplens_core.dir/drop_index.cpp.o.d"
  "CMakeFiles/droplens_core.dir/impact.cpp.o"
  "CMakeFiles/droplens_core.dir/impact.cpp.o.d"
  "CMakeFiles/droplens_core.dir/irr_analysis.cpp.o"
  "CMakeFiles/droplens_core.dir/irr_analysis.cpp.o.d"
  "CMakeFiles/droplens_core.dir/irr_whatif.cpp.o"
  "CMakeFiles/droplens_core.dir/irr_whatif.cpp.o.d"
  "CMakeFiles/droplens_core.dir/maxlength.cpp.o"
  "CMakeFiles/droplens_core.dir/maxlength.cpp.o.d"
  "CMakeFiles/droplens_core.dir/report.cpp.o"
  "CMakeFiles/droplens_core.dir/report.cpp.o.d"
  "CMakeFiles/droplens_core.dir/roa_status.cpp.o"
  "CMakeFiles/droplens_core.dir/roa_status.cpp.o.d"
  "CMakeFiles/droplens_core.dir/rpki_uptake.cpp.o"
  "CMakeFiles/droplens_core.dir/rpki_uptake.cpp.o.d"
  "CMakeFiles/droplens_core.dir/serial_hijackers.cpp.o"
  "CMakeFiles/droplens_core.dir/serial_hijackers.cpp.o.d"
  "CMakeFiles/droplens_core.dir/visibility.cpp.o"
  "CMakeFiles/droplens_core.dir/visibility.cpp.o.d"
  "libdroplens_core.a"
  "libdroplens_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
