file(REMOVE_RECURSE
  "CMakeFiles/droplens_net.dir/cidr_cover.cpp.o"
  "CMakeFiles/droplens_net.dir/cidr_cover.cpp.o.d"
  "CMakeFiles/droplens_net.dir/date.cpp.o"
  "CMakeFiles/droplens_net.dir/date.cpp.o.d"
  "CMakeFiles/droplens_net.dir/interval_set.cpp.o"
  "CMakeFiles/droplens_net.dir/interval_set.cpp.o.d"
  "CMakeFiles/droplens_net.dir/ipv4.cpp.o"
  "CMakeFiles/droplens_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/droplens_net.dir/prefix.cpp.o"
  "CMakeFiles/droplens_net.dir/prefix.cpp.o.d"
  "libdroplens_net.a"
  "libdroplens_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
