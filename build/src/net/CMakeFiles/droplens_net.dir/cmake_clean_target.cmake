file(REMOVE_RECURSE
  "libdroplens_net.a"
)
