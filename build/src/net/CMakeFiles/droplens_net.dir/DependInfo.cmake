
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cidr_cover.cpp" "src/net/CMakeFiles/droplens_net.dir/cidr_cover.cpp.o" "gcc" "src/net/CMakeFiles/droplens_net.dir/cidr_cover.cpp.o.d"
  "/root/repo/src/net/date.cpp" "src/net/CMakeFiles/droplens_net.dir/date.cpp.o" "gcc" "src/net/CMakeFiles/droplens_net.dir/date.cpp.o.d"
  "/root/repo/src/net/interval_set.cpp" "src/net/CMakeFiles/droplens_net.dir/interval_set.cpp.o" "gcc" "src/net/CMakeFiles/droplens_net.dir/interval_set.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/droplens_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/droplens_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/net/CMakeFiles/droplens_net.dir/prefix.cpp.o" "gcc" "src/net/CMakeFiles/droplens_net.dir/prefix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
