# Empty dependencies file for droplens_net.
# This may be replaced when dependencies are built.
