file(REMOVE_RECURSE
  "CMakeFiles/droplens_bgp.dir/fleet.cpp.o"
  "CMakeFiles/droplens_bgp.dir/fleet.cpp.o.d"
  "CMakeFiles/droplens_bgp.dir/mrt.cpp.o"
  "CMakeFiles/droplens_bgp.dir/mrt.cpp.o.d"
  "CMakeFiles/droplens_bgp.dir/rib.cpp.o"
  "CMakeFiles/droplens_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/droplens_bgp.dir/route.cpp.o"
  "CMakeFiles/droplens_bgp.dir/route.cpp.o.d"
  "CMakeFiles/droplens_bgp.dir/table_dump.cpp.o"
  "CMakeFiles/droplens_bgp.dir/table_dump.cpp.o.d"
  "CMakeFiles/droplens_bgp.dir/topology.cpp.o"
  "CMakeFiles/droplens_bgp.dir/topology.cpp.o.d"
  "libdroplens_bgp.a"
  "libdroplens_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
