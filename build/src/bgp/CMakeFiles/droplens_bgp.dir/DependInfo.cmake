
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/fleet.cpp" "src/bgp/CMakeFiles/droplens_bgp.dir/fleet.cpp.o" "gcc" "src/bgp/CMakeFiles/droplens_bgp.dir/fleet.cpp.o.d"
  "/root/repo/src/bgp/mrt.cpp" "src/bgp/CMakeFiles/droplens_bgp.dir/mrt.cpp.o" "gcc" "src/bgp/CMakeFiles/droplens_bgp.dir/mrt.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/droplens_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/droplens_bgp.dir/rib.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/bgp/CMakeFiles/droplens_bgp.dir/route.cpp.o" "gcc" "src/bgp/CMakeFiles/droplens_bgp.dir/route.cpp.o.d"
  "/root/repo/src/bgp/table_dump.cpp" "src/bgp/CMakeFiles/droplens_bgp.dir/table_dump.cpp.o" "gcc" "src/bgp/CMakeFiles/droplens_bgp.dir/table_dump.cpp.o.d"
  "/root/repo/src/bgp/topology.cpp" "src/bgp/CMakeFiles/droplens_bgp.dir/topology.cpp.o" "gcc" "src/bgp/CMakeFiles/droplens_bgp.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
