# Empty dependencies file for droplens_bgp.
# This may be replaced when dependencies are built.
