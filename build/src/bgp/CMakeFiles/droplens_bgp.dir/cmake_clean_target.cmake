file(REMOVE_RECURSE
  "libdroplens_bgp.a"
)
