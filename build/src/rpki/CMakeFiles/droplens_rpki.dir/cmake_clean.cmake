file(REMOVE_RECURSE
  "CMakeFiles/droplens_rpki.dir/archive.cpp.o"
  "CMakeFiles/droplens_rpki.dir/archive.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/as0_policy.cpp.o"
  "CMakeFiles/droplens_rpki.dir/as0_policy.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/authority.cpp.o"
  "CMakeFiles/droplens_rpki.dir/authority.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/cert.cpp.o"
  "CMakeFiles/droplens_rpki.dir/cert.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/crypto.cpp.o"
  "CMakeFiles/droplens_rpki.dir/crypto.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/repository_builder.cpp.o"
  "CMakeFiles/droplens_rpki.dir/repository_builder.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/roa.cpp.o"
  "CMakeFiles/droplens_rpki.dir/roa.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/roa_csv.cpp.o"
  "CMakeFiles/droplens_rpki.dir/roa_csv.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/rtr.cpp.o"
  "CMakeFiles/droplens_rpki.dir/rtr.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/tal.cpp.o"
  "CMakeFiles/droplens_rpki.dir/tal.cpp.o.d"
  "CMakeFiles/droplens_rpki.dir/validator.cpp.o"
  "CMakeFiles/droplens_rpki.dir/validator.cpp.o.d"
  "libdroplens_rpki.a"
  "libdroplens_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
