# Empty compiler generated dependencies file for droplens_rpki.
# This may be replaced when dependencies are built.
