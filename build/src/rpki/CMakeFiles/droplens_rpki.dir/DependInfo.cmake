
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpki/archive.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/archive.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/archive.cpp.o.d"
  "/root/repo/src/rpki/as0_policy.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/as0_policy.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/as0_policy.cpp.o.d"
  "/root/repo/src/rpki/authority.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/authority.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/authority.cpp.o.d"
  "/root/repo/src/rpki/cert.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/cert.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/cert.cpp.o.d"
  "/root/repo/src/rpki/crypto.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/crypto.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/crypto.cpp.o.d"
  "/root/repo/src/rpki/repository_builder.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/repository_builder.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/repository_builder.cpp.o.d"
  "/root/repo/src/rpki/roa.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/roa.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/roa.cpp.o.d"
  "/root/repo/src/rpki/roa_csv.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/roa_csv.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/roa_csv.cpp.o.d"
  "/root/repo/src/rpki/rtr.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/rtr.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/rtr.cpp.o.d"
  "/root/repo/src/rpki/tal.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/tal.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/tal.cpp.o.d"
  "/root/repo/src/rpki/validator.cpp" "src/rpki/CMakeFiles/droplens_rpki.dir/validator.cpp.o" "gcc" "src/rpki/CMakeFiles/droplens_rpki.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rir/CMakeFiles/droplens_rir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
