file(REMOVE_RECURSE
  "libdroplens_rpki.a"
)
