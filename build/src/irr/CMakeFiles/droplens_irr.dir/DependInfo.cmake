
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/irr/database.cpp" "src/irr/CMakeFiles/droplens_irr.dir/database.cpp.o" "gcc" "src/irr/CMakeFiles/droplens_irr.dir/database.cpp.o.d"
  "/root/repo/src/irr/rpsl.cpp" "src/irr/CMakeFiles/droplens_irr.dir/rpsl.cpp.o" "gcc" "src/irr/CMakeFiles/droplens_irr.dir/rpsl.cpp.o.d"
  "/root/repo/src/irr/sets.cpp" "src/irr/CMakeFiles/droplens_irr.dir/sets.cpp.o" "gcc" "src/irr/CMakeFiles/droplens_irr.dir/sets.cpp.o.d"
  "/root/repo/src/irr/snapshot.cpp" "src/irr/CMakeFiles/droplens_irr.dir/snapshot.cpp.o" "gcc" "src/irr/CMakeFiles/droplens_irr.dir/snapshot.cpp.o.d"
  "/root/repo/src/irr/whois.cpp" "src/irr/CMakeFiles/droplens_irr.dir/whois.cpp.o" "gcc" "src/irr/CMakeFiles/droplens_irr.dir/whois.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
