# Empty compiler generated dependencies file for droplens_irr.
# This may be replaced when dependencies are built.
