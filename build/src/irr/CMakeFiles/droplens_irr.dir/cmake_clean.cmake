file(REMOVE_RECURSE
  "CMakeFiles/droplens_irr.dir/database.cpp.o"
  "CMakeFiles/droplens_irr.dir/database.cpp.o.d"
  "CMakeFiles/droplens_irr.dir/rpsl.cpp.o"
  "CMakeFiles/droplens_irr.dir/rpsl.cpp.o.d"
  "CMakeFiles/droplens_irr.dir/sets.cpp.o"
  "CMakeFiles/droplens_irr.dir/sets.cpp.o.d"
  "CMakeFiles/droplens_irr.dir/snapshot.cpp.o"
  "CMakeFiles/droplens_irr.dir/snapshot.cpp.o.d"
  "CMakeFiles/droplens_irr.dir/whois.cpp.o"
  "CMakeFiles/droplens_irr.dir/whois.cpp.o.d"
  "libdroplens_irr.a"
  "libdroplens_irr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_irr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
