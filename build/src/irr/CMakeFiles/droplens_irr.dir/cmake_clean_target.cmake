file(REMOVE_RECURSE
  "libdroplens_irr.a"
)
