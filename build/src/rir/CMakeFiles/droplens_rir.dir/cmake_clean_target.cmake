file(REMOVE_RECURSE
  "libdroplens_rir.a"
)
