
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rir/delegation.cpp" "src/rir/CMakeFiles/droplens_rir.dir/delegation.cpp.o" "gcc" "src/rir/CMakeFiles/droplens_rir.dir/delegation.cpp.o.d"
  "/root/repo/src/rir/registry.cpp" "src/rir/CMakeFiles/droplens_rir.dir/registry.cpp.o" "gcc" "src/rir/CMakeFiles/droplens_rir.dir/registry.cpp.o.d"
  "/root/repo/src/rir/rir.cpp" "src/rir/CMakeFiles/droplens_rir.dir/rir.cpp.o" "gcc" "src/rir/CMakeFiles/droplens_rir.dir/rir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droplens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droplens_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
