file(REMOVE_RECURSE
  "CMakeFiles/droplens_rir.dir/delegation.cpp.o"
  "CMakeFiles/droplens_rir.dir/delegation.cpp.o.d"
  "CMakeFiles/droplens_rir.dir/registry.cpp.o"
  "CMakeFiles/droplens_rir.dir/registry.cpp.o.d"
  "CMakeFiles/droplens_rir.dir/rir.cpp.o"
  "CMakeFiles/droplens_rir.dir/rir.cpp.o.d"
  "libdroplens_rir.a"
  "libdroplens_rir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplens_rir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
