# Empty compiler generated dependencies file for droplens_rir.
# This may be replaced when dependencies are built.
