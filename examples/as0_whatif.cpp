// AS0 what-if: quantify the attack surface that AS0 ROAs would remove —
// the paper's policy recommendation (§6.2, §7).
//
// Three scenarios at the end of the study window:
//   (1) status quo:      attackable = unrouted space not protected by AS0
//   (2) operators sign:  holders of signed-but-unrouted space add AS0
//   (3) RIRs+operators:  additionally, every RIR covers its free pool
//
//   $ ./as0_whatif [--full]
#include <cstring>
#include <iostream>

#include "sim/generator.hpp"
#include "util/text_table.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  net::Date end = config.window_end;

  using net::IntervalSet;
  IntervalSet routed = world->fleet.routed_space(end);
  IntervalSet allocated = world->registry.allocated_space(end);
  IntervalSet signed_space =
      world->roas.signed_space(end, rpki::TalSet::defaults());
  rpki::TalSet as0_tals;
  as0_tals.add(rpki::Tal::kApnicAs0);
  as0_tals.add(rpki::Tal::kLacnicAs0);
  IntervalSet as0_covered = world->roas.signed_space(
      end, rpki::TalSet::all(), rpki::RoaArchive::Filter::kAs0Only);

  // The attack surface: space an attacker can originate without tripping
  // ROV anywhere. Unrouted space that is (a) signed with a non-AS0 ROA
  // (forge the origin, still valid — the 132.255.0.0/22 lesson), (b)
  // allocated and unsigned, or (c) unallocated and not AS0-covered.
  IntervalSet unrouted_signed = IntervalSet::set_difference(
      world->roas.signed_space(end, rpki::TalSet::defaults(),
                               rpki::RoaArchive::Filter::kNonAs0Only),
      routed);
  IntervalSet unrouted_unsigned_alloc = IntervalSet::set_difference(
      IntervalSet::set_difference(allocated, routed), signed_space);
  IntervalSet pool_space;
  for (rir::Rir r : rir::kAllRirs) {
    pool_space =
        IntervalSet::set_union(pool_space, world->registry.free_pool(r, end));
  }
  IntervalSet pool_unprotected =
      IntervalSet::set_difference(pool_space, as0_covered);

  auto s8 = [](const IntervalSet& s) {
    return util::fixed(s.slash8_equivalents(), 2);
  };

  std::cout << "=== AS0 what-if at " << end.to_string() << " ===\n\n";
  util::TextTable table({"attack surface component", "/8-equivalents"});
  table.add_row({"unrouted, signed non-AS0 (forged-origin valid!)",
                 s8(unrouted_signed)});
  table.add_row({"allocated, unrouted, unsigned", s8(unrouted_unsigned_alloc)});
  table.add_row({"unallocated, not AS0-covered", s8(pool_unprotected)});
  IntervalSet total = IntervalSet::set_union(
      IntervalSet::set_union(unrouted_signed, unrouted_unsigned_alloc),
      pool_unprotected);
  table.add_rule();
  table.add_row({"TOTAL attackable today", s8(total)});
  table.print(std::cout);

  // Scenario 2: operators with signed-unrouted space add AS0 ROAs.
  IntervalSet after_operators =
      IntervalSet::set_difference(total, unrouted_signed);
  // Scenario 3: plus every RIR covers its remaining pool with AS0 (and
  // validators actually use those TALs).
  IntervalSet after_rirs =
      IntervalSet::set_difference(after_operators, pool_unprotected);

  std::cout << "\nPolicy scenarios:\n";
  util::TextTable pol({"scenario", "attackable /8-eq", "reduction"});
  auto pct = [&](const IntervalSet& s) {
    return util::percent(
        static_cast<double>(total.size() - s.size()),
        static_cast<double>(total.size()));
  };
  pol.add_row({"status quo", s8(total), "-"});
  pol.add_row({"operators sign unrouted space AS0", s8(after_operators),
               pct(after_operators)});
  pol.add_row({"+ all RIRs AS0 their pools (enforced)", s8(after_rirs),
               pct(after_rirs)});
  pol.print(std::cout);

  std::cout << "\nRemaining exposure is allocated-but-unrouted unsigned "
               "space, which only its (often absent) holders can protect — "
               "the paper's argument for RPKI eligibility reform.\n";
  return 0;
}
