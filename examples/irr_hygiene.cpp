// IRR hygiene audit: scan a RADb-style database for the suspicious
// route-object patterns of §5 — records created just before the prefix was
// first announced, origin ASNs conflicting with older records, ORG-IDs that
// register many prefixes with many different origins, and registrations of
// unallocated space.
//
//   $ ./irr_hygiene [--full]
#include <cstring>
#include <iostream>
#include <map>
#include <set>

#include "sim/generator.hpp"
#include "util/text_table.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);

  struct OrgStats {
    int objects = 0;
    std::set<uint32_t> origins;
    int created_then_announced = 0;  // BGP first seen < 30 d after record
  };
  std::map<std::string, OrgStats> orgs;
  int unallocated_registrations = 0;
  int conflicting_origins = 0;
  std::vector<std::string> flagged;

  for (const irr::Registration& reg : world->irr.all_history()) {
    const irr::RouteObject& obj = reg.object;
    OrgStats& org = orgs[obj.org_id];
    ++org.objects;
    org.origins.insert(obj.origin.value());

    // Pattern 1: record for unallocated space.
    if (world->registry.is_fully_unallocated(obj.prefix,
                                             reg.lifetime.begin)) {
      ++unallocated_registrations;
      flagged.push_back("UNALLOCATED  " + obj.prefix.to_string() + " org " +
                        obj.org_id);
    }
    // Pattern 2: record created, prefix announced shortly after — the
    // register-then-hijack signature (Fig 3).
    for (const bgp::Episode& e : world->fleet.episodes(obj.prefix)) {
      if (e.origin() == obj.origin &&
          e.range.begin >= reg.lifetime.begin &&
          e.range.begin - reg.lifetime.begin < 30) {
        ++org.created_then_announced;
        break;
      }
    }
    // Pattern 3: a newer record whose origin conflicts with an older one.
    for (const irr::Registration& other :
         world->irr.history(obj.prefix)) {
      if (other.object.origin != obj.origin &&
          other.lifetime.begin < reg.lifetime.begin) {
        ++conflicting_origins;
        flagged.push_back("CONFLICT     " + obj.prefix.to_string() +
                          " origin " + obj.origin.to_string() +
                          " supersedes " + other.object.origin.to_string());
        break;
      }
    }
  }

  std::cout << "=== IRR hygiene audit (" << world->irr.source() << ", "
            << world->irr.total_registrations() << " registrations) ===\n\n";
  std::cout << "registrations of unallocated space: "
            << unallocated_registrations << "\n"
            << "records conflicting with an older origin: "
            << conflicting_origins << "\n";

  std::cout << "\nSuspicious ORG-IDs (many objects, many origins, "
               "register-then-announce):\n";
  util::TextTable table(
      {"ORG-ID", "objects", "distinct origins", "announce<30d", "verdict"});
  for (const auto& [id, s] : orgs) {
    bool suspicious = s.objects >= 5 && s.origins.size() >= 3 &&
                      s.created_then_announced * 2 > s.objects;
    if (s.objects < 5) continue;
    table.add_row({id, std::to_string(s.objects),
                   std::to_string(s.origins.size()),
                   std::to_string(s.created_then_announced),
                   suspicious ? "SUSPICIOUS" : "ok"});
  }
  table.print(std::cout);

  std::cout << "\nFlagged records (first 15):\n";
  for (size_t i = 0; i < flagged.size() && i < 15; ++i) {
    std::cout << "  " << flagged[i] << "\n";
  }
  return 0;
}
