// Hijack forensics: reconstruct the full history of one prefix across every
// data set — BGP origination episodes, ROA history, IRR registrations,
// allocation status, and DROP listings — the way Fig 4 was assembled.
//
//   $ ./hijack_forensics [prefix]       (default: 132.255.0.0/22)
//   $ ./hijack_forensics --full [prefix]
#include <cstring>
#include <iostream>

#include "core/study.hpp"
#include "sim/generator.hpp"
#include "util/text_table.hpp"

using namespace droplens;

namespace {

std::string date_or_open(net::Date d) {
  return d == net::DateRange::unbounded() ? "..." : d.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::string target = "132.255.0.0/22";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      target = argv[i];
    }
  }
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  net::Prefix prefix = net::Prefix::parse(target);

  std::cout << "=== Forensic report for " << prefix.to_string() << " ===\n";

  // Allocation history.
  std::cout << "\n-- Registry --\n";
  auto history = world->registry.history(prefix);
  if (auto rir = world->registry.rir_of(prefix)) {
    std::cout << "administered by " << rir::display_name(*rir) << "\n";
  }
  if (history.empty()) {
    std::cout << "never allocated (bogon space)\n";
  }
  for (const rir::Allocation& a : history) {
    std::cout << a.prefix.to_string() << " allocated to '" << a.holder
              << "' " << a.lifetime.begin.to_string() << " .. "
              << date_or_open(a.lifetime.end) << "\n";
  }

  // BGP.
  std::cout << "\n-- BGP origination episodes --\n";
  util::TextTable bgp({"prefix", "from", "to", "AS path"});
  for (const auto& [p, e] : world->fleet.episodes_covered_by(prefix)) {
    bgp.add_row({p.to_string(), e.range.begin.to_string(),
                 date_or_open(e.range.end), e.path->to_string()});
  }
  bgp.print(std::cout);

  // RPKI.
  std::cout << "\n-- ROA history --\n";
  auto records = world->roas.records_covering(prefix);
  if (records.empty()) std::cout << "(never signed)\n";
  for (const rpki::RoaRecord& r : records) {
    std::cout << r.roa.to_string() << "  " << r.lifetime.begin.to_string()
              << " .. " << date_or_open(r.lifetime.end) << "\n";
  }

  // IRR.
  std::cout << "\n-- IRR route objects --\n";
  auto regs = world->irr.history(prefix);
  if (regs.empty()) std::cout << "(none)\n";
  for (const irr::Registration& r : regs) {
    std::cout << r.object.prefix.to_string() << " origin "
              << r.object.origin.to_string() << " org " << r.object.org_id
              << "  " << r.lifetime.begin.to_string() << " .. "
              << date_or_open(r.lifetime.end) << "\n";
  }

  // DROP.
  std::cout << "\n-- DROP listings --\n";
  auto listings = world->drop.listings_of(prefix);
  if (listings.empty()) std::cout << "(never listed)\n";
  for (const drop::Listing& l : listings) {
    std::cout << "listed " << l.listed.begin.to_string() << " .. "
              << date_or_open(l.listed.end);
    if (!l.sbl_id.empty()) {
      std::cout << "  (" << l.sbl_id << ")";
      if (const drop::SblRecord* rec = world->sbl.find(l.sbl_id)) {
        std::cout << "\n  SBL: " << rec->text;
      }
    }
    std::cout << "\n";
  }

  // Verdict: cross-check origin against the ROA at each episode start.
  std::cout << "\n-- ROV verdicts --\n";
  for (const auto& [p, e] : world->fleet.episodes_covered_by(prefix)) {
    rpki::Validity v =
        world->roas.validate_route(p, e.origin(), e.range.begin);
    std::cout << p.to_string() << " @ " << e.range.begin.to_string()
              << " origin " << e.origin().to_string() << ": "
              << rpki::to_string(v) << "\n";
  }
  return 0;
}
