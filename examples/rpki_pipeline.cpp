// The full RPKI machinery, end to end, on the synthetic Internet:
//
//   world's ROA set  ->  object repository (certs, manifests, CRLs)
//                    ->  relying-party validator (signature/resource checks)
//                    ->  VRPs  ->  RTR cache  ->  router-side ROV
//
// ...finishing with the router validating the Fig 4 case-study routes.
//
//   $ ./rpki_pipeline [--full]
#include <cstring>
#include <iostream>

#include "rpki/repository_builder.hpp"
#include "rpki/rtr.hpp"
#include "rpki/validator.hpp"
#include "sim/generator.hpp"
#include "util/text_table.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  net::Date today = config.window_end;

  // 1. Materialize the day's ROAs as a signed object repository.
  rpki::BuiltRepository built =
      rpki::build_repository(world->roas, world->registry, today);
  std::cout << "repository: " << built.repository.points.size()
            << " publication points, " << built.production_tals.size()
            << " production TALs, " << built.as0_tals.size()
            << " AS0 TALs\n";

  // 2. Run the relying-party validator from the production TALs.
  rpki::ValidatorOutput rp =
      rpki::run_validator(built.repository, built.production_tals, today);
  size_t expected = world->roas.live_roas(today).size();
  std::cout << "validator: " << rp.vrps.size() << " VRPs ("
            << expected << " ROAs live in the archive), "
            << rp.rejected.size() << " objects rejected\n";

  // 3. Load the VRPs into an RTR cache and sync a router.
  std::vector<rpki::Vrp> vrps;
  for (const rpki::Roa& roa : rp.vrps) {
    vrps.push_back(rpki::Vrp::from_roa(roa));
  }
  rpki::RtrServer cache(4242);
  cache.update(vrps);
  rpki::RtrClient router;
  router.consume(cache.handle(rpki::parse_pdus(router.poll())[0]));
  std::cout << "rtr: router synced " << router.table_size()
            << " VRPs at serial " << *router.serial() << "\n";

  // 4. The router validates the case-study routes (Fig 4).
  std::cout << "\nRouter ROV verdicts on the case-study routes:\n";
  util::TextTable table({"prefix", "origin", "verdict", "note"});
  struct Probe {
    const char* prefix;
    uint32_t origin;
    const char* note;
  };
  const Probe probes[] = {
      {"132.255.0.0/22", 263692,
       "the RPKI-valid hijack — ROV cannot stop it"},
      {"132.255.0.0/24", 263692, "hijacker's /24: beyond the ROA -> invalid"},
      {"132.255.0.0/22", 50509, "wrong origin -> invalid"},
      {"187.110.192.0/20", 263692, "unsigned victim space -> not-found"},
  };
  for (const Probe& probe : probes) {
    rpki::Validity v = router.validate(net::Prefix::parse(probe.prefix),
                                       net::Asn(probe.origin));
    table.add_row({probe.prefix, "AS" + std::to_string(probe.origin),
                   std::string(rpki::to_string(v)), probe.note});
  }
  table.print(std::cout);

  // 5. A second router that also configured the AS0 TALs.
  rpki::ValidatorOutput rp_as0 =
      rpki::run_validator(built.repository, built.all_tals(), today);
  std::vector<rpki::Vrp> vrps_as0;
  for (const rpki::Roa& roa : rp_as0.vrps) {
    vrps_as0.push_back(rpki::Vrp::from_roa(roa));
  }
  rpki::RtrServer cache_as0(4243);
  cache_as0.update(vrps_as0);
  rpki::RtrClient router_as0;
  router_as0.consume(cache_as0.handle(rpki::parse_pdus(router_as0.poll())[0]));
  size_t extra = router_as0.table_size() - router.table_size();
  std::cout << "\nWith the APNIC/LACNIC AS0 TALs the router holds " << extra
            << " additional AS0 VRPs covering the free pools; bogon "
               "announcements inside them validate INVALID instead of "
               "not-found (§6.2.2).\n";
  if (!world->truth.background_bogons.empty()) {
    net::Prefix bogon = world->truth.background_bogons.front();
    std::cout << "example bogon " << bogon.to_string() << ": production-only="
              << rpki::to_string(router.validate(bogon, net::Asn(65000)))
              << ", with-AS0="
              << rpki::to_string(router_as0.validate(bogon, net::Asn(65000)))
              << "\n";
  }
  return 0;
}
