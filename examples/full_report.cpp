// Full study report: one call regenerates the whole paper as a text
// document (all sections, the Fig 4 timeline, extension analyses).
//
//   $ ./full_report [--full] [--series] [--threads=N] > report.md
//
// The report engine parallelizes across the configured thread count
// (--threads, else DROPLENS_THREADS, else hardware_concurrency; 1 forces
// the sequential path). Output is byte-identical for any thread count.
#include <cstring>
#include <iostream>
#include <string>

#include "core/report.hpp"
#include "sim/generator.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = false;
  core::ReportOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--series") == 0) options.include_series = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      char* end = nullptr;
      unsigned long v = std::strtoul(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0' || v > 1024) {
        std::cerr << "error: --threads expects an integer in 1..1024 (got '"
                  << (argv[i] + 10) << "')\n";
        return 2;
      }
      options.threads = static_cast<unsigned>(v);
    }
  }
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  core::Study study{world->registry, world->fleet,  world->irr,
                    world->roas,     world->drop,   world->sbl,
                    config.window_begin, config.window_end};
  core::write_report(std::cout, study, options);
  return 0;
}
