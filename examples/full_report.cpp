// Full study report: one call regenerates the whole paper as a text
// document (all sections, the Fig 4 timeline, extension analyses).
//
//   $ ./full_report [--full] [--series] > report.md
#include <cstring>
#include <iostream>

#include "core/report.hpp"
#include "sim/generator.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = false;
  core::ReportOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--series") == 0) options.include_series = true;
  }
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  core::Study study{world->registry, world->fleet,  world->irr,
                    world->roas,     world->drop,   world->sbl,
                    config.window_begin, config.window_end};
  core::write_report(std::cout, study, options);
  return 0;
}
