// Full study report: one call regenerates the whole paper as a text
// document (all sections, the Fig 4 timeline, extension analyses).
//
//   $ ./full_report [--full] [--series] [--threads=N] [--trace] > report.md
//
// The report engine parallelizes across the configured thread count
// (--threads, else DROPLENS_THREADS, else hardware_concurrency; 1 forces
// the sequential path). Output is byte-identical for any thread count.
//
// --trace installs an obs::Tracer for the run and dumps the recorded span
// trees (per-stage wall/CPU time) to stderr afterwards; stdout — the report
// itself — is byte-identical with and without it.
//
// Fault drill: the DROP substrate can be round-tripped through its text
// archive with deterministic damage before the analyses run —
//
//   $ ./full_report --corrupt=7 --drop-days=2 --lenient > report.md
//
// --corrupt=SEED splices garbage into every other daily snapshot,
// --drop-days=N removes N days entirely, and --lenient ingests the result
// with ParsePolicy::kLenient, attaching the DataQuality ledger so the report
// ends with a "Data quality" section. The same damage without --lenient
// shows the strict behavior: ingestion aborts on the first bad record.
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/data_quality.hpp"
#include "core/report.hpp"
#include "drop/feed.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "sim/generator.hpp"
#include "util/error.hpp"
#include "util/parse_report.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = false;
  bool lenient = false;
  bool trace = false;
  std::optional<uint64_t> corrupt_seed;
  int drop_days = 0;
  core::ReportOptions options;
  auto uint_arg = [&](const char* arg, const char* flag, size_t prefix,
                      unsigned long max, unsigned long* out) {
    char* end = nullptr;
    unsigned long v = std::strtoul(arg + prefix, &end, 10);
    if (end == arg + prefix || *end != '\0' || v > max) {
      DLOG_ERROR("flag expects an integer",
                 {{"flag", flag},
                  {"max", std::to_string(max)},
                  {"got", arg + prefix}});
      return false;
    }
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--series") == 0) options.include_series = true;
    if (std::strcmp(argv[i], "--lenient") == 0) lenient = true;
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      unsigned long v = 0;
      if (!uint_arg(argv[i], "--threads", 10, 1024, &v)) return 2;
      options.threads = static_cast<unsigned>(v);
    }
    if (std::strncmp(argv[i], "--corrupt=", 10) == 0) {
      unsigned long v = 0;
      if (!uint_arg(argv[i], "--corrupt", 10, ~0ul, &v)) return 2;
      corrupt_seed = v;
    }
    if (std::strncmp(argv[i], "--drop-days=", 12) == 0) {
      unsigned long v = 0;
      if (!uint_arg(argv[i], "--drop-days", 12, 1000, &v)) return 2;
      drop_days = static_cast<int>(v);
    }
  }
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);

  // The rebuilt-from-archive DROP list and its ledger must outlive the study.
  drop::DropList rebuilt;
  core::DataQuality quality;
  bool replayed = corrupt_seed.has_value() || drop_days > 0 || lenient;
  if (replayed) {
    // Round-trip the DROP list through its daily text archive, damaging it
    // on the way, exactly like a real multi-year Firehol mirror gone stale.
    sim::FaultInjector inj(corrupt_seed.value_or(1));
    sim::FaultInjector::DailyArchive archive;
    for (net::Date d = config.window_begin; d <= config.window_end; d += 30) {
      archive.emplace_back(d, drop::write_drop_feed(world->drop, d));
    }
    if (corrupt_seed) {
      for (size_t i = 0; i < archive.size(); i += 2) {
        archive[i].second = inj.garbage_lines(archive[i].second);
      }
    }
    std::vector<net::Date> dropped = inj.drop_days(archive, drop_days);
    inj.shuffle_days(archive);

    util::ParsePolicy policy =
        lenient ? util::ParsePolicy::kLenient : util::ParsePolicy::kStrict;
    std::vector<std::pair<net::Date, std::vector<drop::FeedEntry>>> days;
    try {
      for (const auto& [date, text] : archive) {
        util::ParseReport report(date.to_string() + ".feed");
        days.emplace_back(date, drop::parse_drop_feed(text, policy, &report));
        quality.note_input(core::Feed::kDropFeed, report);
      }
    } catch (const ParseError& e) {
      DLOG_ERROR(
          "strict ingestion aborted (rerun with --lenient to "
          "skip-and-count instead)",
          {{"reason", e.what()}});
      return 1;
    }
    for (net::Date d : dropped) {
      quality.mark_day_unavailable(core::Feed::kDropFeed, d);
    }
    rebuilt = drop::from_daily_feeds(days);
    DLOG_INFO(
        "DROP archive replay",
        {{"days", std::to_string(archive.size())},
         {"records",
          std::to_string(quality.report(core::Feed::kDropFeed).parsed())},
         {"skipped",
          std::to_string(quality.report(core::Feed::kDropFeed).skipped())},
         {"days_dropped", std::to_string(dropped.size())}});
  }

  core::Study study{world->registry, world->fleet,  world->irr,
                    world->roas,     replayed ? rebuilt : world->drop,
                    world->sbl,      config.window_begin, config.window_end};
  if (replayed) study.quality = &quality;
  if (trace) {
    // Timing goes to stderr; the report on stdout stays byte-identical.
    obs::Tracer tracer;
    {
      obs::ScopedTracer scoped(tracer);
      core::write_report(std::cout, study, options);
    }
    // The tree goes out as one record (newlines escape in both formats);
    // a per-line record would trip the per-site rate limiter mid-dump.
    std::ostringstream tree;
    tracer.render(tree);
    DLOG_INFO("span trace",
              {{"roots", std::to_string(tracer.submitted())},
               {"tree", tree.str()}});
  } else {
    core::write_report(std::cout, study, options);
  }
  return 0;
}
