// Quickstart: generate a small synthetic Internet, run the full DROP-lens
// analysis pipeline, and print a one-page report.
//
//   $ ./quickstart [--full]
//
// --full runs the paper-scale scenario (a few seconds and ~1 GB of RAM);
// the default small scenario finishes in milliseconds.
#include <cstring>
#include <iostream>

#include "core/as0_analysis.hpp"
#include "core/case_study.hpp"
#include "core/classification.hpp"
#include "core/drop_index.hpp"
#include "core/irr_analysis.hpp"
#include "core/roa_status.hpp"
#include "core/rpki_uptake.hpp"
#include "core/visibility.hpp"
#include "sim/generator.hpp"
#include "util/text_table.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();

  std::cout << "Generating " << (full ? "paper-scale" : "small")
            << " synthetic Internet (seed " << config.seed << ")...\n";
  std::unique_ptr<sim::World> world = sim::generate(config);

  core::Study study{world->registry, world->fleet,  world->irr,
                    world->roas,     world->drop,   world->sbl,
                    config.window_begin, config.window_end};
  core::DropIndex index = core::DropIndex::build(study);

  std::cout << "\n== The DROP list ==\n";
  core::ClassificationResult cls = core::analyze_classification(study, index);
  std::cout << "prefixes ever listed:     " << cls.total_prefixes << "\n"
            << "with an SBL record:       " << cls.with_record << " ("
            << util::percent(cls.with_record, cls.total_prefixes) << ")\n"
            << "AFRINIC-incident share:   "
            << util::percent(
                   static_cast<double>(cls.incident_space.size()),
                   static_cast<double>(cls.total_space.size()))
            << " of listed space in " << cls.incident_prefixes
            << " prefixes\n";

  util::TextTable table({"category", "exclusive", "+overlap", "space /8-eq"});
  for (const core::CategoryStats& s : cls.per_category) {
    table.add_row({std::string(drop::full_name(s.category)),
                   std::to_string(s.exclusive_prefixes),
                   std::to_string(s.additional_prefixes),
                   util::fixed(s.space.slash8_equivalents(), 4)});
  }
  table.print(std::cout);

  std::cout << "\n== Effects of blocklisting ==\n";
  core::VisibilityResult vis = core::analyze_visibility(study, index);
  std::cout << "withdrawn within 30 days: "
            << util::percent(vis.withdrawn_within_30d, vis.routed_at_listing)
            << " of " << vis.routed_at_listing << " routed-at-listing\n"
            << "peers that filter DROP:   " << vis.filtering_peers << " of "
            << world->fleet.full_table_peer_count() << "\n";

  core::RpkiUptakeResult uptake = core::analyze_rpki_uptake(study, index);
  std::cout << "signing rate (never/removed/present): "
            << util::percent(uptake.never_total.signed_,
                             uptake.never_total.total)
            << " / "
            << util::percent(uptake.removed_total.signed_,
                             uptake.removed_total.total)
            << " / "
            << util::percent(uptake.present_total.signed_,
                             uptake.present_total.total)
            << "\n";

  std::cout << "\n== IRR ==\n";
  core::IrrResult irr = core::analyze_irr(study, index);
  std::cout << "DROP prefixes with route object: "
            << irr.prefixes_with_route_object << " ("
            << util::percent(irr.prefixes_with_route_object,
                             irr.drop_prefix_count)
            << " of prefixes, "
            << util::percent(
                   static_cast<double>(irr.route_object_space.size()),
                   static_cast<double>(irr.drop_space.size()))
            << " of space)\n"
            << "hijacker ASN in route object:    "
            << irr.hijacker_asn_in_route_object << " of "
            << irr.hijacked_with_asn << " labeled hijacks, via "
            << irr.distinct_hijacking_asns << " ASNs\n";

  std::cout << "\n== RPKI ==\n";
  core::CaseStudyResult cs = core::analyze_case_study(study, index);
  std::cout << "hijacked prefixes signed before listing: "
            << cs.signed_before_listing << " of " << cs.hijacked_prefixes
            << " (attacker-controlled ROAs: " << cs.attacker_controlled_roas
            << ")\n";
  for (const core::RpkiValidHijack& h : cs.valid_hijacks) {
    std::cout << "RPKI-VALID HIJACK: " << h.prefix.to_string() << " via ROA "
              << h.roa_asn.to_string() << ", unrouted since "
              << h.unrouted_since.to_string() << ", re-originated "
              << h.rehijacked_on.to_string() << "; " << h.siblings.size()
              << " sibling prefixes (" << h.siblings_on_drop << " on DROP)\n";
  }

  core::RoaStatusResult roa = core::analyze_roa_status(study);
  std::cout << "signed space:  " << util::fixed(roa.first().signed_slash8, 2)
            << " -> " << util::fixed(roa.last().signed_slash8, 2)
            << " /8-equivalents ("
            << util::fixed(roa.first().percent_roas_routed(), 1) << "% -> "
            << util::fixed(roa.last().percent_roas_routed(), 1)
            << "% routed)\n"
            << "signed+unrouted (hijackable): "
            << util::fixed(roa.last().signed_unrouted_nonas0_slash8, 2)
            << " /8-eq; allocated+unrouted+unsigned: "
            << util::fixed(roa.last().alloc_unrouted_no_roa_slash8, 2)
            << " /8-eq\n";

  core::As0Result as0 = core::analyze_as0(study, index);
  std::cout << "unallocated prefixes on DROP: "
            << as0.unallocated_listings.size() << " ("
            << as0.listed_after_policy << " after an RIR AS0 policy)\n"
            << "routes/peer an AS0 TAL would reject: "
            << util::fixed(as0.mean_as0_rejectable, 1) << " (peers filtering: "
            << as0.peers_apparently_filtering_as0 << ")\n";
  return 0;
}
