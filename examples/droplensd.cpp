// droplensd: the prefix-intelligence query service as a TCP daemon.
//
// Generates a world and serves the WHOLE study window from one process:
// the server fronts a SnapshotStore, so any query date — and the range op
// spanning [d0, d1] — resolves to its own day's snapshot (resident, mmap-
// loaded, delta-patched, or compiled on miss). Two protocols ride the same
// transport core: the binary query protocol (svc::Client speaks it) and
// IRRd-style whois for the IRR view. SIGHUP rescans the snapshot directory
// incrementally (unchanged resident days stay mapped); SIGINT/SIGTERM shut
// down cleanly.
//
//   $ ./droplensd [--small] [--seed=N] [--port=P] [--whois-port=P]
//                 [--admin-port=P] [--threads=N] [--date-offset=DAYS]
//                 [--snapshot-dir=PATH] [--max-resident=N]
//                 [--transport=epoll|threads] [--max-conns=N]
//                 [--idle-timeout-ms=MS] [--max-inflight=N]
//                 [--follow[=DAYS_PER_SEC]] [--compact-every=DAYS]
//                 [--log-level=debug|info|warn|error]
//                 [--log-format=logfmt|json]
//
// Then, from another terminal:  printf '!gAS64500\n' | nc 127.0.0.1 4343
// With --admin-port=P (or its old spelling --metrics-port=P), the admin
// plane serves the operator's view over plain HTTP:
//   curl http://127.0.0.1:P/metrics    Prometheus exposition (+ exemplars)
//   curl http://127.0.0.1:P/healthz    200 ok / 503 with per-check reasons
//   curl http://127.0.0.1:P/statusz    build, uptime, fds, store + stream
//   curl http://127.0.0.1:P/tracez     recent sampled request traces
//   curl http://127.0.0.1:P/slowz      slowest requests with stage splits
//   curl http://127.0.0.1:P/logz       recent log records + suppression
//
// The serving edge defaults to the hardened epoll transport (a fixed pool
// of event threads; see svc/epoll_transport.hpp) — --transport=threads
// falls back to thread-per-connection. --max-conns caps concurrent
// connections per listener (excess accepts get a typed overload reply),
// --idle-timeout-ms bounds quiet connections (slowloris drips included),
// and --max-inflight turns on load shedding: bulk ops shed first, queries
// next, stats/admin last, so observability survives overload. All three
// fronts (binary, whois, admin HTTP) share the same limits; every limit,
// shed, and disconnect reason is a droplens_transport_* metric.
//
// With --follow the daemon goes live: a follower thread lowers the world
// into the canonical event stream (sim::EventReplayer), fast-forwards the
// pre-window history, then paces through the study window at DAYS_PER_SEC
// (default 50; 0 = as fast as possible), feeding every event through the
// stream::Publisher — live Applier state, online alarms, delta log. Every
// --compact-every days (default 7) the live state is compacted into an
// immutable snapshot and published as the serving head, so queries for the
// current day hit the live head while historical dates still resolve
// through the store. Subscribers (svc::Client + stream::Subscriber) follow
// the session with serial-numbered delta frames.
//
// With --snapshot-dir=PATH snapshots persist as `.dls` files — keyframes
// or deltas, see svc/snapshot_io.hpp: the first run compiles and saves,
// every restart mmaps back instead of recompiling, and `snapshot_tool
// delta` can re-encode the directory as patch chains. --max-resident=N
// bounds how many days stay materialized at once (LRU beyond it).
// Snapshot versions come from the SnapshotStore's monotonic counter, so no
// two artifacts ever share one.
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "core/snapshot_cache.hpp"
#include "irr/whois.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "sim/event_replayer.hpp"
#include "sim/generator.hpp"
#include "stream/publisher.hpp"
#include "svc/admin_http.hpp"
#include "svc/epoll_transport.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "svc/transport.hpp"
#include "svc/whois_service.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

// Signal handlers may only touch lock-free state; the main loop polls.
volatile std::sig_atomic_t g_reload = 0;
volatile std::sig_atomic_t g_stop = 0;

void on_sighup(int) { g_reload = 1; }
void on_sigterm(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  uint64_t seed = 0;
  uint16_t port = 4242;
  uint16_t whois_port = 4343;
  bool metrics = false;
  uint16_t metrics_port = 0;
  unsigned threads = util::ThreadPool::default_thread_count();
  int32_t date_offset = 60;
  std::string snapshot_dir;
  size_t max_resident = 16;
  std::string transport = "epoll";
  size_t max_conns = 0;
  uint32_t idle_timeout_ms = 0;
  size_t max_inflight = 0;
  bool follow = false;
  double follow_rate = 50.0;
  int compact_every = 7;
  obs::Logger::Options log_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::stoull(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::stoul(argv[i] + 7));
    }
    if (std::strncmp(argv[i], "--whois-port=", 13) == 0) {
      whois_port = static_cast<uint16_t>(std::stoul(argv[i] + 13));
    }
    if (std::strncmp(argv[i], "--metrics-port=", 15) == 0) {
      metrics = true;
      metrics_port = static_cast<uint16_t>(std::stoul(argv[i] + 15));
    }
    if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      metrics = true;
      metrics_port = static_cast<uint16_t>(std::stoul(argv[i] + 13));
    }
    if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      if (auto level = obs::parse_log_level(argv[i] + 12)) {
        log_options.level = *level;
      } else {
        DLOG_ERROR("unknown --log-level", {{"value", argv[i] + 12}});
        return 2;
      }
    }
    if (std::strncmp(argv[i], "--log-format=", 13) == 0) {
      if (auto format = obs::parse_log_format(argv[i] + 13)) {
        log_options.format = *format;
      } else {
        DLOG_ERROR("unknown --log-format", {{"value", argv[i] + 13}});
        return 2;
      }
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--date-offset=", 14) == 0) {
      date_offset = std::stoi(argv[i] + 14);
    }
    if (std::strncmp(argv[i], "--snapshot-dir=", 15) == 0) {
      snapshot_dir = argv[i] + 15;
    }
    if (std::strncmp(argv[i], "--max-resident=", 15) == 0) {
      max_resident = std::stoull(argv[i] + 15);
    }
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transport = argv[i] + 12;
    }
    if (std::strncmp(argv[i], "--max-conns=", 12) == 0) {
      max_conns = std::stoull(argv[i] + 12);
    }
    if (std::strncmp(argv[i], "--idle-timeout-ms=", 18) == 0) {
      idle_timeout_ms = static_cast<uint32_t>(std::stoul(argv[i] + 18));
    }
    if (std::strncmp(argv[i], "--max-inflight=", 15) == 0) {
      max_inflight = std::stoull(argv[i] + 15);
    }
    if (std::strcmp(argv[i], "--follow") == 0) follow = true;
    if (std::strncmp(argv[i], "--follow=", 9) == 0) {
      follow = true;
      follow_rate = std::stod(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--compact-every=", 16) == 0) {
      compact_every = std::stoi(argv[i] + 16);
    }
  }
  if (compact_every < 1) compact_every = 1;
  svc::TransportKind transport_kind;
  try {
    transport_kind = svc::parse_transport_kind(transport);
  } catch (const std::exception& e) {
    DLOG_ERROR(e.what());
    return 2;
  }

  // One process-wide registry, installed before anything that binds
  // instruments is constructed — the pool, cache, parsers, and server all
  // register here, so the /metrics page aggregates the whole process.
  // Declared first so it outlives every instrument holder.
  obs::Registry registry;
  obs::ScopedRegistry scoped_registry(registry);

  // The structured logger replaces raw stderr writes, and the flight
  // recorder arms request tracing. Both install before any TraceBinding or
  // log site resolves them: the transports, the publisher, and every DLOG_*
  // from here on bind to these instances.
  obs::Logger logger(log_options);
  obs::install_logger(&logger);
  obs::FlightRecorder recorder;
  obs::ScopedFlightRecorder scoped_recorder(recorder);

  sim::ScenarioConfig config =
      small ? sim::ScenarioConfig::small() : sim::ScenarioConfig{};
  if (seed) config.seed = seed;
  DLOG_INFO("generating world",
            {{"scale", small ? "small" : "paper-scale"},
             {"seed", std::to_string(config.seed)}});
  auto world = sim::generate(config);

  util::ThreadPool pool(threads);
  core::SnapshotCache cache(world->registry, world->fleet, world->roas,
                            world->drop, &world->irr);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  study.pool = &pool;
  study.snapshots = &cache;
  // Ingestion ledger: simulated worlds parse clean, so the gauges read zero,
  // but the families are always on the /metrics page — a scraper alerting on
  // droplens_feed_records_skipped_total works unchanged on archive-fed runs.
  core::DataQuality quality;
  study.quality = &quality;
  const size_t window_days =
      static_cast<size_t>(config.window_end.days() -
                          config.window_begin.days() + 1);
  quality.export_metrics(registry, window_days);
  core::DropIndex index = core::DropIndex::build(study);
  net::Date date = config.window_begin + date_offset;

  // The store owns snapshot versioning and, when --snapshot-dir is given,
  // the .dls files: a restart mmaps yesterday's compile instead of redoing
  // it. The server fronts the store, so every date in the study window is
  // servable — --date-offset only picks which day to warm up eagerly.
  svc::SnapshotStore::Config store_config;
  store_config.dir = snapshot_dir;
  store_config.max_resident = max_resident;
  svc::SnapshotStore store(store_config, &study, &index);
  store.get(date);  // warm the default serving date eagerly
  if (store.stats().loads > 0) {
    DLOG_INFO("mmap-loaded snapshot (no recompile)",
              {{"path", store.path_for(date)}});
  }
  svc::Server server(store, &pool);
  // The three fronts share one robustness posture: same cap, same idle
  // bound, same shed pivot — each under its own {listener=...} label.
  auto front_options = [&](const char* name, uint16_t p) {
    svc::TransportOptions o;
    o.listen.port = p;
    o.name = name;
    o.max_conns = max_conns;
    o.idle_timeout_ms = idle_timeout_ms;
    o.max_inflight = max_inflight;
    return o;
  };
  std::unique_ptr<svc::TransportServer> query_tcp = svc::make_transport_server(
      transport_kind, server, front_options("query", port));

  // --follow: the live side. The publisher owns event ingestion and the
  // delta log; the server serves its kSubscribeRequest frames from any
  // transport thread, and the follower below is the single writer.
  std::unique_ptr<stream::Publisher> publisher;
  std::thread follower;
  if (follow) {
    stream::AlarmMonitor::Config monitor_config;
    monitor_config.window_begin = config.window_begin;
    monitor_config.window_end = config.window_end;
    monitor_config.drop = &world->drop;
    publisher = std::make_unique<stream::Publisher>(monitor_config);
    publisher->seed_rir(world->registry);
    server.set_stream_feed(publisher.get());
    follower = std::thread([&world, &config, &server, &publisher, follow_rate,
                            compact_every] {
      sim::EventReplayer replayer(*world);
      const std::vector<stream::Event>& events = replayer.events();
      // Fast-forward the pre-window history in one burst: the monitor's
      // baseline and the applier's live state need it, but nobody wants to
      // watch 14 years at replay pace.
      size_t i = 0;
      while (i < events.size() && !g_stop &&
             events[i].date < config.window_begin) {
        publisher->ingest(events[i]);
        ++i;
      }
      DLOG_INFO("follower fast-forwarded pre-window history",
                {{"events", std::to_string(i)},
                 {"window_days",
                  std::to_string(config.window_end.days() -
                                 config.window_begin.days() + 1)},
                 {"days_per_sec", std::to_string(follow_rate)}});
      // Live-head versions live far above the store's monotonic counter so
      // the two artifact streams never collide.
      uint64_t version = uint64_t{1} << 62;
      int day_no = 0;
      for (net::Date d = config.window_begin;
           d <= config.window_end && !g_stop; d = d + 1, ++day_no) {
        while (i < events.size() && events[i].date == d) {
          publisher->ingest(events[i]);
          ++i;
        }
        if (day_no % compact_every == 0 || d == config.window_end) {
          server.publish(publisher->compact(d, ++version));
          // Keep a generous tail of delivered history; subscribers lagging
          // past the floor get the RTR-style reset.
          publisher->trim(size_t{1} << 16);
        }
        if (follow_rate > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(1.0 / follow_rate));
        }
      }
      DLOG_INFO("follower done",
                {{"events", std::to_string(publisher->head())},
                 {"alarms",
                  std::to_string(publisher->monitor().alarms().size())}});
    });
  }

  irr::WhoisServer whois(world->irr, date);
  svc::WhoisService whois_service(whois);
  std::unique_ptr<svc::TransportServer> whois_tcp = svc::make_transport_server(
      transport_kind, whois_service, front_options("whois", whois_port));

  // The admin plane: /metrics plus health, status, traces, and logs, all
  // reading the same objects the daemon serves with — the /healthz checks
  // and the ingest-lag gauge share one source of truth with the scrape.
  svc::AdminHttpService::Options admin_options;
  admin_options.registry = &registry;
  admin_options.exemplars = &recorder;
  admin_options.recorder = &recorder;
  admin_options.logger = &logger;
  admin_options.build_info = "droplensd (" __VERSION__ ")";
  svc::AdminHttpService admin_service(admin_options);
  admin_service.add_health_check("store", [&store] {
    return store.resident_count() > 0
               ? std::nullopt
               : std::optional<std::string>("no resident days");
  });
  if (follow) {
    stream::Publisher* pub = publisher.get();
    admin_service.add_refresh_hook([pub] { pub->refresh_ingest_lag_gauge(); });
    admin_service.add_health_check("stream", [pub] {
      const double lag = pub->ingest_lag_seconds();
      return lag <= 60.0 ? std::nullopt
                         : std::optional<std::string>(
                               "ingest stalled for " +
                               std::to_string(static_cast<long>(lag)) + "s");
    });
  }
  admin_service.add_status_section("store", [&store, &snapshot_dir] {
    const svc::SnapshotStore::Stats s = store.stats();
    std::string body;
    body += "resident_days " + std::to_string(store.resident_count()) + "\n";
    body += "on_disk_days " +
            std::to_string(snapshot_dir.empty() ? 0 : store.on_disk().size()) +
            "\n";
    body += "loads " + std::to_string(s.loads) + "\n";
    body += "delta_loads " + std::to_string(s.delta_loads) + "\n";
    body += "compiles " + std::to_string(s.compiles) + "\n";
    body += "evictions " + std::to_string(s.evictions) + "\n";
    return body;
  });
  admin_service.add_status_section("serving", [&server, &config] {
    const svc::ServerStats s = server.stats();
    std::string body;
    body += "window " + config.window_begin.to_string() + ".." +
            config.window_end.to_string() + "\n";
    body += "requests " + std::to_string(s.requests) + "\n";
    body += "queries " + std::to_string(s.queries) + "\n";
    body += "malformed " + std::to_string(s.malformed) + "\n";
    return body;
  });
  if (follow) {
    stream::Publisher* pub = publisher.get();
    admin_service.add_status_section("stream", [pub] {
      std::string body;
      body += "head_seq " + std::to_string(pub->head()) + "\n";
      body += "alarms " + std::to_string(pub->monitor().alarms().size()) +
              "\n";
      body += "ingest_lag_seconds " +
              std::to_string(pub->ingest_lag_seconds()) + "\n";
      return body;
    });
  }
  std::unique_ptr<svc::TransportServer> metrics_tcp;
  if (metrics) {
    metrics_tcp = svc::make_transport_server(
        transport_kind, admin_service, front_options("admin", metrics_port));
  }

  std::signal(SIGHUP, on_sighup);
  std::signal(SIGINT, on_sigterm);
  std::signal(SIGTERM, on_sigterm);

  DLOG_INFO("serving",
            {{"window", config.window_begin.to_string() + ".." +
                            config.window_end.to_string()},
             {"warm_date", date.to_string()},
             {"query_port", std::to_string(query_tcp->port())},
             {"whois_port", std::to_string(whois_tcp->port())},
             {"engine_threads", std::to_string(pool.concurrency())},
             {"max_resident", std::to_string(max_resident)}});
  DLOG_INFO("transport limits (0 = unlimited)",
            {{"transport", transport},
             {"max_conns", std::to_string(max_conns)},
             {"idle_timeout_ms", std::to_string(idle_timeout_ms)},
             {"max_inflight", std::to_string(max_inflight)}});
  if (metrics_tcp) {
    DLOG_INFO("admin plane up",
              {{"url", "http://127.0.0.1:" + std::to_string(
                           metrics_tcp->port()) + "/"}});
  }
  DLOG_INFO("SIGHUP rescans the snapshot directory; SIGINT stops");

  while (!g_stop) {
    if (g_reload) {
      g_reload = 0;
      DLOG_INFO("rescanning snapshot directory");
      // Incremental: days whose files are byte-identical (size+mtime) stay
      // resident; changed or deleted days re-materialize on next query.
      const size_t before = store.resident_count();
      store.rescan();
      const size_t kept = store.resident_count();
      quality.export_metrics(registry, window_days);
      DLOG_INFO("rescan done", {{"kept", std::to_string(kept)},
                                {"of", std::to_string(before)}});
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  DLOG_INFO("shutting down");
  if (follower.joinable()) follower.join();
  query_tcp->stop();
  whois_tcp->stop();
  if (metrics_tcp) metrics_tcp->stop();
  svc::ServerStats stats = server.stats();
  DLOG_INFO("served", {{"frames", std::to_string(stats.requests)},
                       {"lookups", std::to_string(stats.queries)},
                       {"malformed", std::to_string(stats.malformed)},
                       {"reloads", std::to_string(stats.reloads)}});
  obs::install_logger(nullptr);
  return 0;
}
