// droplensd: the prefix-intelligence query service as a TCP daemon.
//
// Generates a world, compiles a snapshot, and serves two protocols from the
// same transport core: the binary query protocol (svc::Client speaks it)
// and IRRd-style whois for the IRR view. SIGHUP recompiles and hot-swaps
// the snapshot (version bumps, in-flight queries finish on the old one);
// SIGINT/SIGTERM shut down cleanly.
//
//   $ ./droplensd [--small] [--seed=N] [--port=P] [--whois-port=P]
//                 [--threads=N] [--date-offset=DAYS]
//
// Then, from another terminal:  printf '!gAS64500\n' | nc 127.0.0.1 4343
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "core/drop_index.hpp"
#include "core/snapshot_cache.hpp"
#include "irr/whois.hpp"
#include "sim/generator.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/transport.hpp"
#include "svc/whois_service.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

// Signal handlers may only touch lock-free state; the main loop polls.
volatile std::sig_atomic_t g_reload = 0;
volatile std::sig_atomic_t g_stop = 0;

void on_sighup(int) { g_reload = 1; }
void on_sigterm(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  uint64_t seed = 0;
  uint16_t port = 4242;
  uint16_t whois_port = 4343;
  unsigned threads = util::ThreadPool::default_thread_count();
  int32_t date_offset = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::stoull(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::stoul(argv[i] + 7));
    }
    if (std::strncmp(argv[i], "--whois-port=", 13) == 0) {
      whois_port = static_cast<uint16_t>(std::stoul(argv[i] + 13));
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--date-offset=", 14) == 0) {
      date_offset = std::stoi(argv[i] + 14);
    }
  }

  sim::ScenarioConfig config =
      small ? sim::ScenarioConfig::small() : sim::ScenarioConfig{};
  if (seed) config.seed = seed;
  std::cerr << "droplensd: generating " << (small ? "small" : "paper-scale")
            << " world...\n";
  auto world = sim::generate(config);

  util::ThreadPool pool(threads);
  core::SnapshotCache cache(world->registry, world->fleet, world->roas,
                            world->drop, &world->irr);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  study.pool = &pool;
  study.snapshots = &cache;
  core::DropIndex index = core::DropIndex::build(study);
  net::Date date = config.window_begin + date_offset;

  uint64_t version = 1;
  svc::Server server(svc::compile_snapshot(study, index, date, version),
                     &pool);
  svc::TcpServer query_tcp(server, port);

  irr::WhoisServer whois(world->irr, date);
  svc::WhoisService whois_service(whois);
  svc::TcpServer whois_tcp(whois_service, whois_port);

  std::signal(SIGHUP, on_sighup);
  std::signal(SIGINT, on_sigterm);
  std::signal(SIGTERM, on_sigterm);

  std::cerr << "droplensd: serving date " << date.to_string()
            << " — binary protocol on 127.0.0.1:" << query_tcp.port()
            << ", whois on 127.0.0.1:" << whois_tcp.port() << " ("
            << pool.concurrency() << " engine threads)\n"
            << "droplensd: SIGHUP reloads the snapshot; SIGINT stops\n";

  while (!g_stop) {
    if (g_reload) {
      g_reload = 0;
      ++version;
      std::cerr << "droplensd: reloading snapshot (version " << version
                << ")...\n";
      server.publish(svc::compile_snapshot(study, index, date, version));
      std::cerr << "droplensd: snapshot " << version << " live\n";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cerr << "droplensd: shutting down\n";
  query_tcp.stop();
  whois_tcp.stop();
  svc::ServerStats stats = server.stats();
  std::cerr << "droplensd: served " << stats.requests << " frames ("
            << stats.queries << " lookups, " << stats.malformed
            << " malformed, " << stats.reloads << " reloads)\n";
  return 0;
}
