// snapshot_tool: compile, inspect, verify, and re-encode .dls files.
//
//   $ ./snapshot_tool compile --dir=DIR [--small] [--seed=N] [--threads=N]
//                             [--start=OFFSET] [--days=N] [--stride=DAYS]
//       Generate the world once, then compile-and-save one snapshot per
//       date (window_begin + start + i*stride) through a SnapshotStore —
//       exactly the files a droplensd --snapshot-dir=DIR restart mmaps.
//
//   $ ./snapshot_tool delta --dir=DIR [--keyframe-every=K]
//       Re-encode the directory in place as delta chains: every Kth file
//       (date order; default 7) stays a keyframe, every other file becomes
//       a patch over the previous date present in the directory. Consecutive
//       days share almost everything, so the directory typically shrinks
//       5-20x. Idempotent; prints the before/after byte ratio.
//
//   $ ./snapshot_tool expand --dir=DIR
//       The inverse: rewrite every delta file as a self-contained keyframe.
//
//   $ ./snapshot_tool inspect FILE...
//       Validate each file's header (magic, version, CRC, layout) and print
//       it: kind, date (and base date for deltas), degraded feeds, writer
//       version, and the segment table.
//
//   $ ./snapshot_tool verify FILE...
//       Full hostile-input validation: load each file (header + every
//       segment CRC + structural invariants); deltas are reconstructed over
//       their base chain, resolved through sibling YYYYMMDD.dls files.
//       Exit 1 if any file fails.
//
//   $ ./snapshot_tool diff A.dls B.dls [--quiet]
//       Lower the two compiled days into the ordered stream::Event sequence
//       transforming A into B (stream/snapshot_diff.hpp) — the same currency
//       the live delta protocol ships. Prints one event per line (--quiet
//       prints only the summary), then replays the sequence onto A and
//       verifies the result is structurally identical to B. Exit 1 if the
//       round-trip check fails.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "core/snapshot_cache.hpp"
#include "core/study.hpp"
#include "obs/log.hpp"
#include "sim/generator.hpp"
#include "stream/snapshot_diff.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_io.hpp"
#include "svc/snapshot_store.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

int usage() {
  DLOG_ERROR(
      "usage: snapshot_tool compile --dir=DIR [--small] [--seed=N] "
      "[--threads=N] [--start=OFFSET] [--days=N] [--stride=DAYS] | "
      "delta --dir=DIR [--keyframe-every=K] | expand --dir=DIR | "
      "inspect FILE... | verify FILE... | diff A.dls B.dls [--quiet]");
  return 2;
}

uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  uint64_t n = std::filesystem::file_size(path, ec);
  return ec ? 0 : n;
}

int run_compile(int argc, char** argv) {
  std::string dir;
  bool small = false;
  uint64_t seed = 0;
  unsigned threads = util::ThreadPool::default_thread_count();
  int32_t start = 60;
  int days = 1;
  int stride = 30;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) dir = argv[i] + 6;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::stoull(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--start=", 8) == 0) {
      start = std::stoi(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--days=", 7) == 0) days = std::stoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--stride=", 9) == 0) {
      stride = std::stoi(argv[i] + 9);
    }
  }
  if (dir.empty() || days < 1 || stride < 1) return usage();

  sim::ScenarioConfig config =
      small ? sim::ScenarioConfig::small() : sim::ScenarioConfig{};
  if (seed) config.seed = seed;
  DLOG_INFO("generating world",
            {{"scale", small ? "small" : "paper-scale"}});
  auto world = sim::generate(config);
  util::ThreadPool pool(threads);
  core::SnapshotCache cache(world->registry, world->fleet, world->roas,
                            world->drop, &world->irr);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  study.pool = &pool;
  study.snapshots = &cache;
  core::DropIndex index = core::DropIndex::build(study);

  svc::SnapshotStore::Config store_config;
  store_config.dir = dir;
  store_config.max_resident = 1;  // compile-and-save, no need to keep days
  svc::SnapshotStore store(store_config, &study, &index);
  for (int i = 0; i < days; ++i) {
    net::Date d = config.window_begin + start + i * stride;
    std::shared_ptr<const svc::Snapshot> snap = store.get(d);
    std::cout << store.path_for(d) << ": date " << snap->date().to_string()
              << ", version " << snap->version() << ", degraded 0x" << std::hex
              << unsigned(snap->degraded()) << std::dec << "\n";
  }
  svc::SnapshotStore::Stats stats = store.stats();
  DLOG_INFO("compile done",
            {{"compiled", std::to_string(stats.compiles)},
             {"saved", std::to_string(stats.saves)},
             {"already_on_disk", std::to_string(stats.loads)}});
  return 0;
}

int run_delta(int argc, char** argv) {
  std::string dir;
  int keyframe_every = 7;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) dir = argv[i] + 6;
    if (std::strncmp(argv[i], "--keyframe-every=", 17) == 0) {
      keyframe_every = std::stoi(argv[i] + 17);
    }
  }
  if (dir.empty() || keyframe_every < 1) return usage();

  // Disk-only store: resolves whatever mix of keyframes and deltas the
  // directory holds now (re-running with a different K is fine). Residency
  // covers one chain plus the working pair so bases resolve from memory.
  svc::SnapshotStore::Config store_config;
  store_config.dir = dir;
  store_config.max_resident = static_cast<size_t>(keyframe_every) + 2;
  store_config.save_compiled = false;
  svc::SnapshotStore store(store_config);
  std::vector<net::Date> dates = store.on_disk();
  if (dates.empty()) {
    DLOG_ERROR("no .dls files in directory", {{"dir", dir}});
    return 1;
  }
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
  std::shared_ptr<const svc::Snapshot> prev;
  for (size_t i = 0; i < dates.size(); ++i) {
    std::string path = store.path_for(dates[i]);
    std::shared_ptr<const svc::Snapshot> snap = store.get(dates[i]);
    bytes_before += file_bytes(path);
    if (i % static_cast<size_t>(keyframe_every) == 0) {
      // Chain anchor: every Kth file stays (or becomes again) a keyframe.
      if (svc::snapshot_file_kind(path) != svc::SnapshotFileKind::kKeyframe) {
        svc::save_snapshot(*snap, path);
      }
    } else {
      svc::save_snapshot_delta(*snap, *prev, path);
    }
    bytes_after += file_bytes(path);
    prev = std::move(snap);
  }
  DLOG_INFO("re-encoded directory as delta chains",
            {{"files", std::to_string(dates.size())},
             {"bytes_before", std::to_string(bytes_before)},
             {"bytes_after", std::to_string(bytes_after)},
             {"ratio",
              std::to_string(bytes_after
                                 ? static_cast<double>(bytes_before) /
                                       static_cast<double>(bytes_after)
                                 : 0.0)}});
  return 0;
}

int run_expand(int argc, char** argv) {
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) dir = argv[i] + 6;
  }
  if (dir.empty()) return usage();

  svc::SnapshotStore::Config store_config;
  store_config.dir = dir;
  store_config.max_resident = 4;
  store_config.save_compiled = false;
  svc::SnapshotStore store(store_config);
  size_t expanded = 0;
  int failures = 0;
  for (net::Date d : store.on_disk()) {
    std::string path = store.path_for(d);
    try {
      if (svc::snapshot_file_kind(path) != svc::SnapshotFileKind::kDelta) {
        continue;
      }
      // Ascending date order means every base this chain needs is either
      // already expanded or still resolvable — either way get() serves it.
      std::shared_ptr<const svc::Snapshot> snap = store.get(d);
      svc::save_snapshot(*snap, path);
      ++expanded;
    } catch (const svc::SnapshotFormatError& e) {
      std::cout << path << ": REJECTED [" << to_string(e.code()) << "] "
                << e.what() << "\n";
      ++failures;
    }
  }
  DLOG_INFO("expanded delta files to keyframes",
            {{"expanded", std::to_string(expanded)}});
  return failures ? 1 : 0;
}

void print_segment_table(const svc::SegmentDesc* segments) {
  std::printf("  %-10s %10s %10s %8s %6s %10s\n", "segment", "offset",
              "length", "count", "elem", "crc32c");
  for (size_t s = 0; s < svc::kSnapshotSegmentCount; ++s) {
    const svc::SegmentDesc& sd = segments[s];
    std::printf("  %-10s %10" PRIu64 " %10" PRIu64 " %8" PRIu64
                " %6u %10x\n",
                std::string(to_string(static_cast<svc::SnapshotSegment>(s)))
                    .c_str(),
                sd.offset, sd.length, sd.count(), sd.elem_size, sd.crc32c);
  }
}

void print_degraded(uint8_t degraded) {
  std::cout << "  degraded feeds:";
  if (degraded == 0) std::cout << " none";
  for (core::Feed f : core::kAllFeeds) {
    if (degraded & (1u << static_cast<unsigned>(f))) {
      std::cout << " " << to_string(f);
    }
  }
}

int run_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      if (svc::snapshot_file_kind(argv[i]) == svc::SnapshotFileKind::kDelta) {
        svc::SnapshotDeltaHeader h = svc::read_snapshot_delta_header(argv[i]);
        std::cout << argv[i] << ":\n"
                  << "  delta (format version " << h.format_version
                  << "), date " << net::Date(h.date_days).to_string()
                  << " over base " << net::Date(h.base_date_days).to_string()
                  << ", writer version " << h.writer_version << "\n";
        print_degraded(h.degraded);
        std::printf("\n  %" PRIu64 " bytes, header CRC32C %08x\n",
                    h.file_length, h.header_crc32c);
        print_segment_table(h.segments);
        continue;
      }
      svc::SnapshotHeader h = svc::read_snapshot_header(argv[i]);
      std::cout << argv[i] << ":\n"
                << "  keyframe (format version " << h.format_version
                << "), date " << net::Date(h.date_days).to_string()
                << ", writer version " << h.writer_version << "\n";
      print_degraded(h.degraded);
      std::printf("\n  %" PRIu64 " bytes, header CRC32C %08x\n",
                  h.file_length, h.header_crc32c);
      print_segment_table(h.segments);
    } catch (const svc::SnapshotFormatError& e) {
      std::cout << argv[i] << ": REJECTED [" << to_string(e.code()) << "] "
                << e.what() << "\n";
      ++failures;
    }
  }
  return failures ? 1 : 0;
}

int run_verify(int argc, char** argv) {
  if (argc < 3) return usage();
  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      std::shared_ptr<const svc::Snapshot> snap;
      std::string base_note;
      if (svc::snapshot_file_kind(argv[i]) == svc::SnapshotFileKind::kDelta) {
        // Reconstruct over the base chain, resolved through sibling
        // YYYYMMDD.dls files in the same directory.
        svc::SnapshotDeltaHeader h = svc::read_snapshot_delta_header(argv[i]);
        svc::SnapshotStore::Config store_config;
        store_config.dir =
            std::filesystem::path(argv[i]).parent_path().string();
        store_config.save_compiled = false;
        svc::SnapshotStore store(store_config);
        snap = store.get(net::Date(h.date_days));
        if (!snap) {
          // Canonical name missing: the chain can't be resolved from here.
          throw svc::SnapshotFormatError(
              svc::SnapshotIoError::kIo,
              "delta verification needs the file at its canonical "
              "YYYYMMDD.dls name (base chain resolves by date)");
        }
        base_note = " (delta over " + net::Date(h.base_date_days).to_string() +
                    ")";
      } else {
        snap = svc::load_snapshot(argv[i], 1);
      }
      std::cout << argv[i] << ": OK — date " << snap->date().to_string()
                << base_note << ", " << snap->routed().interval_count()
                << " routed intervals, " << snap->drop().segment_count()
                << " drop segments\n";
    } catch (const svc::SnapshotFormatError& e) {
      std::cout << argv[i] << ": REJECTED [" << to_string(e.code()) << "] "
                << e.what() << "\n";
      ++failures;
    }
  }
  return failures ? 1 : 0;
}

/// Load a .dls file of either kind: keyframes directly, deltas by resolving
/// the base chain through sibling YYYYMMDD.dls files (like `verify`).
std::shared_ptr<const svc::Snapshot> load_any(const char* path) {
  if (svc::snapshot_file_kind(path) == svc::SnapshotFileKind::kDelta) {
    svc::SnapshotDeltaHeader h = svc::read_snapshot_delta_header(path);
    svc::SnapshotStore::Config store_config;
    store_config.dir = std::filesystem::path(path).parent_path().string();
    store_config.save_compiled = false;
    svc::SnapshotStore store(store_config);
    std::shared_ptr<const svc::Snapshot> snap = store.get(net::Date(h.date_days));
    if (!snap) {
      throw svc::SnapshotFormatError(
          svc::SnapshotIoError::kIo,
          "delta diffing needs the file at its canonical YYYYMMDD.dls name "
          "(base chain resolves by date)");
    }
    return snap;
  }
  return svc::load_snapshot(path, 1);
}

int run_diff(int argc, char** argv) {
  std::vector<const char*> files;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) return usage();

  std::shared_ptr<const svc::Snapshot> a;
  std::shared_ptr<const svc::Snapshot> b;
  try {
    a = load_any(files[0]);
    b = load_any(files[1]);
  } catch (const svc::SnapshotFormatError& e) {
    DLOG_ERROR("snapshot rejected",
               {{"code", std::string(to_string(e.code()))},
                {"reason", e.what()}});
    return 1;
  }

  std::vector<stream::Event> events = stream::diff_snapshots(*a, *b);
  if (!quiet) {
    for (const stream::Event& e : events) std::cout << e.to_string() << "\n";
  }
  DLOG_INFO("diff computed",
            {{"events", std::to_string(events.size())},
             {"from", a->date().to_string()},
             {"to", b->date().to_string()}});

  // Round-trip: the emitted sequence must actually reproduce B from A.
  svc::Snapshot rebuilt =
      stream::apply_diff(*a, events, b->date(), b->version());
  if (!stream::snapshots_equal(rebuilt, *b)) {
    DLOG_ERROR(
        "round-trip FAILED — replayed diff does not reproduce the target "
        "snapshot");
    return 1;
  }
  DLOG_INFO("round-trip OK (replayed diff reproduces target)",
            {{"target", files[1]}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "compile") == 0) return run_compile(argc, argv);
  if (std::strcmp(argv[1], "delta") == 0) return run_delta(argc, argv);
  if (std::strcmp(argv[1], "expand") == 0) return run_expand(argc, argv);
  if (std::strcmp(argv[1], "inspect") == 0) return run_inspect(argc, argv);
  if (std::strcmp(argv[1], "verify") == 0) return run_verify(argc, argv);
  if (std::strcmp(argv[1], "diff") == 0) return run_diff(argc, argv);
  return usage();
}
