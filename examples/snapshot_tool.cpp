// snapshot_tool: compile, inspect, and verify .dls snapshot files.
//
//   $ ./snapshot_tool compile --dir=DIR [--small] [--seed=N] [--threads=N]
//                             [--start=OFFSET] [--days=N] [--stride=DAYS]
//       Generate the world once, then compile-and-save one snapshot per
//       date (window_begin + start + i*stride) through a SnapshotStore —
//       exactly the files a droplensd --snapshot-dir=DIR restart mmaps.
//
//   $ ./snapshot_tool inspect FILE...
//       Validate each file's header (magic, version, CRC, layout) and print
//       it: date, degraded feeds, writer version, and the segment table.
//
//   $ ./snapshot_tool verify FILE...
//       Full hostile-input validation: mmap-load each file (header + every
//       segment CRC + structural invariants). Exit 1 if any file fails.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "core/snapshot_cache.hpp"
#include "core/study.hpp"
#include "sim/generator.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_io.hpp"
#include "svc/snapshot_store.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

int usage() {
  std::cerr << "usage: snapshot_tool compile --dir=DIR [--small] [--seed=N]\n"
               "                     [--threads=N] [--start=OFFSET]\n"
               "                     [--days=N] [--stride=DAYS]\n"
               "       snapshot_tool inspect FILE...\n"
               "       snapshot_tool verify FILE...\n";
  return 2;
}

int run_compile(int argc, char** argv) {
  std::string dir;
  bool small = false;
  uint64_t seed = 0;
  unsigned threads = util::ThreadPool::default_thread_count();
  int32_t start = 60;
  int days = 1;
  int stride = 30;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) dir = argv[i] + 6;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::stoull(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--start=", 8) == 0) {
      start = std::stoi(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--days=", 7) == 0) days = std::stoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--stride=", 9) == 0) {
      stride = std::stoi(argv[i] + 9);
    }
  }
  if (dir.empty() || days < 1 || stride < 1) return usage();

  sim::ScenarioConfig config =
      small ? sim::ScenarioConfig::small() : sim::ScenarioConfig{};
  if (seed) config.seed = seed;
  std::cerr << "snapshot_tool: generating " << (small ? "small" : "paper-scale")
            << " world...\n";
  auto world = sim::generate(config);
  util::ThreadPool pool(threads);
  core::SnapshotCache cache(world->registry, world->fleet, world->roas,
                            world->drop, &world->irr);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  study.pool = &pool;
  study.snapshots = &cache;
  core::DropIndex index = core::DropIndex::build(study);

  svc::SnapshotStore::Config store_config;
  store_config.dir = dir;
  store_config.max_resident = 1;  // compile-and-save, no need to keep days
  svc::SnapshotStore store(store_config, &study, &index);
  for (int i = 0; i < days; ++i) {
    net::Date d = config.window_begin + start + i * stride;
    std::shared_ptr<const svc::Snapshot> snap = store.get(d);
    std::cout << store.path_for(d) << ": date " << snap->date().to_string()
              << ", version " << snap->version() << ", degraded 0x" << std::hex
              << unsigned(snap->degraded()) << std::dec << "\n";
  }
  svc::SnapshotStore::Stats stats = store.stats();
  std::cerr << "snapshot_tool: " << stats.compiles << " compiled, "
            << stats.saves << " saved, " << stats.loads
            << " already on disk\n";
  return 0;
}

int run_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      svc::SnapshotHeader h = svc::read_snapshot_header(argv[i]);
      std::cout << argv[i] << ":\n"
                << "  format version " << h.format_version << ", date "
                << net::Date(h.date_days).to_string() << ", writer version "
                << h.writer_version << "\n  degraded feeds:";
      if (h.degraded == 0) std::cout << " none";
      for (core::Feed f : core::kAllFeeds) {
        if (h.degraded & (1u << static_cast<unsigned>(f))) {
          std::cout << " " << to_string(f);
        }
      }
      std::printf("\n  %" PRIu64 " bytes, header CRC32C %08x\n",
                  h.file_length, h.header_crc32c);
      std::printf("  %-10s %10s %10s %8s %6s %10s\n", "segment", "offset",
                  "length", "count", "elem", "crc32c");
      for (size_t s = 0; s < svc::kSnapshotSegmentCount; ++s) {
        const svc::SegmentDesc& sd = h.segments[s];
        std::printf("  %-10s %10" PRIu64 " %10" PRIu64 " %8" PRIu64
                    " %6u %10x\n",
                    std::string(to_string(static_cast<svc::SnapshotSegment>(s)))
                        .c_str(),
                    sd.offset, sd.length, sd.count(), sd.elem_size, sd.crc32c);
      }
    } catch (const svc::SnapshotFormatError& e) {
      std::cout << argv[i] << ": REJECTED [" << to_string(e.code()) << "] "
                << e.what() << "\n";
      ++failures;
    }
  }
  return failures ? 1 : 0;
}

int run_verify(int argc, char** argv) {
  if (argc < 3) return usage();
  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    try {
      std::shared_ptr<const svc::Snapshot> snap =
          svc::load_snapshot(argv[i], 1);
      std::cout << argv[i] << ": OK — date " << snap->date().to_string()
                << ", " << snap->routed().interval_count()
                << " routed intervals, " << snap->drop().segment_count()
                << " drop segments\n";
    } catch (const svc::SnapshotFormatError& e) {
      std::cout << argv[i] << ": REJECTED [" << to_string(e.code()) << "] "
                << e.what() << "\n";
      ++failures;
    }
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "compile") == 0) return run_compile(argc, argv);
  if (std::strcmp(argv[1], "inspect") == 0) return run_inspect(argc, argv);
  if (std::strcmp(argv[1], "verify") == 0) return run_verify(argc, argv);
  return usage();
}
