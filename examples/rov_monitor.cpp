// ROV monitor: replay a peer's BGP update stream through a PeerRib while
// validating every announcement against the ROA set of that day (RFC 6811),
// under a configurable TAL set. Demonstrates what a route-origin-validating
// operator — with or without the APNIC/LACNIC AS0 TALs — would have rejected
// during the study window.
//
//   $ ./rov_monitor [--full] [--with-as0-tals]
#include <cstring>
#include <iostream>
#include <map>

#include "bgp/rib.hpp"
#include "sim/generator.hpp"
#include "util/text_table.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bool full = false;
  bool with_as0 = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--with-as0-tals") == 0) with_as0 = true;
  }
  sim::ScenarioConfig config =
      full ? sim::ScenarioConfig{} : sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  rpki::TalSet tals =
      with_as0 ? rpki::TalSet::all() : rpki::TalSet::defaults();

  std::cout << "ROV monitor on peer 0 (" << world->fleet.peer(0).name
            << "), TALs: " << (with_as0 ? "production + AS0" : "production")
            << "\n\n";

  bgp::PeerRib rib;
  std::map<rpki::Validity, size_t> tally;
  size_t rejected = 0;
  std::vector<std::string> alerts;
  for (const bgp::Update& u : world->fleet.update_stream(0)) {
    if (u.date < config.window_begin || u.date >= config.window_end) continue;
    if (u.type == bgp::UpdateType::kWithdraw) {
      rib.apply(u);
      continue;
    }
    rpki::Validity v =
        world->roas.validate_route(u.prefix, u.path.origin(), u.date, tals);
    ++tally[v];
    if (v == rpki::Validity::kInvalid) {
      ++rejected;  // an ROV-enforcing router drops the route
      if (alerts.size() < 12) {
        alerts.push_back(u.date.to_string() + "  " + u.prefix.to_string() +
                         " origin " + u.path.origin().to_string() +
                         "  path [" + u.path.to_string() + "]");
      }
      continue;
    }
    rib.apply(u);
  }

  util::TextTable table({"validity", "announcements"});
  table.add_row({"valid", std::to_string(tally[rpki::Validity::kValid])});
  table.add_row({"not-found", std::to_string(tally[rpki::Validity::kNotFound])});
  table.add_row({"invalid (rejected)", std::to_string(rejected)});
  table.print(std::cout);

  std::cout << "\nfinal RIB size: " << rib.size() << " routes\n";
  std::cout << "\nFirst rejected announcements:\n";
  for (const std::string& a : alerts) std::cout << "  " << a << "\n";

  if (!with_as0) {
    std::cout << "\nHint: rerun with --with-as0-tals to see how many extra "
                 "routes the APNIC/LACNIC AS0 TALs would reject (§6.2.2).\n";
  }
  return 0;
}
