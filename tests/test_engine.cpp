// Concurrency layer: ThreadPool semantics, SnapshotCache sharing, and the
// engine determinism guard (1-thread vs N-thread reports must be
// byte-identical). This file is the TSan gate for the parallel engine:
//   cmake -B build-tsan -S . -DDROPLENS_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -R Engine
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/report.hpp"
#include "core/snapshot_cache.hpp"
#include "sim/generator.hpp"
#include "util/thread_pool.hpp"

namespace droplens {
namespace {

TEST(EngineThreadPool, SubmitReturnsResults) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  auto a = pool.submit([] { return 7; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(EngineThreadPool, SubmitPropagatesExceptions) {
  util::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(EngineThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(EngineThreadPool, ParallelForPropagatesFirstException) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](size_t i) {
                          ran.fetch_add(1);
                          if (i == 17) throw std::runtime_error("bad index");
                        }),
      std::runtime_error);
  // All chunks settle before the rethrow; the pool remains usable.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
  EXPECT_GE(ran.load(), 1);
}

TEST(EngineThreadPool, SequentialModeRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.submit([&] { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
  std::vector<size_t> order;
  pool.parallel_for(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(EngineThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(done.load(), 200);
}

TEST(EngineThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  util::ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(8, [&](size_t) {
    pool.parallel_for(8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(EngineThreadPool, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("DROPLENS_THREADS", "3", 1), 0);
  EXPECT_EQ(util::ThreadPool::default_thread_count(), 3u);
  ASSERT_EQ(setenv("DROPLENS_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(util::ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("DROPLENS_THREADS"), 0);
  EXPECT_GE(util::ThreadPool::default_thread_count(), 1u);
}

class EngineWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* EngineWorldTest::config_ = nullptr;
sim::World* EngineWorldTest::world_ = nullptr;

TEST_F(EngineWorldTest, SnapshotCacheSharesOneComputationPerDay) {
  core::SnapshotCache cache(world_->registry, world_->fleet, world_->roas,
                            world_->drop);
  net::Date d = config_->window_begin + 30;
  auto first = cache.routed_space(d);
  auto second = cache.routed_space(d);
  EXPECT_EQ(first.get(), second.get());  // same immutable snapshot
  EXPECT_EQ(*first, world_->fleet.routed_space(d));

  auto signed_all = cache.signed_space(d, rpki::TalSet::defaults());
  auto signed_nonas0 = cache.signed_space(
      d, rpki::TalSet::defaults(), rpki::RoaArchive::Filter::kNonAs0Only);
  EXPECT_NE(signed_all.get(), signed_nonas0.get());  // distinct variants
  EXPECT_EQ(*signed_all, world_->roas.signed_space(d));

  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(EngineWorldTest, SnapshotCacheCoversAllSubstrates) {
  core::SnapshotCache cache(world_->registry, world_->fleet, world_->roas,
                            world_->drop);
  net::Date d = config_->window_end;
  EXPECT_EQ(*cache.allocated_space(d), world_->registry.allocated_space(d));
  EXPECT_EQ(*cache.free_pool(rir::Rir::kLacnic, d),
            world_->registry.free_pool(rir::Rir::kLacnic, d));
  net::IntervalSet drop_active;
  for (const net::Prefix& p : world_->drop.snapshot(d)) drop_active.insert(p);
  EXPECT_EQ(*cache.drop_space(d), drop_active);
}

TEST_F(EngineWorldTest, SnapshotCacheIsSafeUnderConcurrentLookups) {
  core::SnapshotCache cache(world_->registry, world_->fleet, world_->roas,
                            world_->drop);
  util::ThreadPool pool(4);
  std::vector<uint64_t> sizes(64);
  pool.parallel_for(sizes.size(), [&](size_t i) {
    net::Date d = config_->window_begin + static_cast<int32_t>(30 * (i % 8));
    sizes[i] = cache.routed_space(d)->size() +
               cache.allocated_space(d)->size() +
               cache.signed_space(d, rpki::TalSet::defaults())->size();
  });
  for (size_t i = 8; i < sizes.size(); ++i) {
    ASSERT_EQ(sizes[i], sizes[i % 8]);
  }
}

// The determinism guard: the full report (every analysis, CSV series
// included) must be byte-identical across thread counts.
TEST_F(EngineWorldTest, ReportIsByteIdenticalAcrossThreadCounts) {
  core::ReportOptions options;
  options.include_series = true;

  options.threads = 1;
  std::ostringstream sequential;
  core::Study s1 = study();
  int sections_seq = core::write_report(sequential, s1, options);

  options.threads = 4;
  std::ostringstream parallel;
  core::Study s4 = study();
  int sections_par = core::write_report(parallel, s4, options);

  EXPECT_EQ(sections_seq, sections_par);
  EXPECT_EQ(sequential.str(), parallel.str());

  // And a second parallel run reproduces itself.
  std::ostringstream again;
  core::Study s4b = study();
  core::write_report(again, s4b, options);
  EXPECT_EQ(parallel.str(), again.str());
}

}  // namespace
}  // namespace droplens
