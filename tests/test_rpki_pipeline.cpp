// The full RPKI pipeline: simulated crypto, certificate tree, validator,
// and the RTR protocol down to router-side ROV.
#include <gtest/gtest.h>

#include "rpki/authority.hpp"
#include "rpki/crypto.hpp"
#include "rpki/rtr.hpp"
#include "rpki/repository_builder.hpp"
#include "rpki/validator.hpp"
#include "sim/generator.hpp"
#include "sim/rng.hpp"
#include "util/error.hpp"

namespace droplens::rpki {
namespace {

net::Date D(const char* s) { return net::Date::parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }
net::DateRange years(const char* from, const char* to) {
  return net::DateRange{D(from), D(to)};
}

TEST(Crypto, SignVerifyRoundTrip) {
  KeyPair key = KeyPair::derive(42);
  Signature sig = sign(key.secret, "hello");
  EXPECT_TRUE(verify(key.public_id, "hello", sig));
  EXPECT_FALSE(verify(key.public_id, "hellp", sig));
  KeyPair other = KeyPair::derive(43);
  EXPECT_FALSE(verify(other.public_id, "hello", sig));
}

TEST(Crypto, DigestIsStable) {
  EXPECT_EQ(digest("abc"), digest("abc"));
  EXPECT_NE(digest("abc"), digest("abd"));
}

// --- A healthy tree --------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::IntervalSet ta_space;
    ta_space.insert(P("185.0.0.0/8"));
    ta_space.insert(P("193.0.0.0/8"));
    ta = std::make_unique<CertificateAuthority>(
        CertificateAuthority::trust_anchor("RIPE", 1001, ta_space,
                                           years("2015-01-01", "2030-01-01")));
    net::IntervalSet isp_space;
    isp_space.insert(P("185.40.0.0/14"));
    isp = std::make_unique<CertificateAuthority>(ta->delegate(
        "example-isp", 2002, isp_space, years("2018-01-01", "2026-01-01")));
    roa_serial = isp->issue_roa(
        Roa(P("185.40.0.0/16"), net::Asn(64500), Tal::kRipe, 20),
        years("2019-01-01", "2025-01-01"));
    ta->issue_roa(Roa(P("193.0.0.0/16"), net::Asn(3333), Tal::kRipe),
                  years("2019-01-01", "2025-01-01"));
  }

  RpkiRepository publish(net::Date now) {
    RpkiRepository repo;
    repo.points.emplace_back("RIPE", ta->publish(now));
    repo.points.emplace_back("example-isp", isp->publish(now));
    return repo;
  }

  std::unique_ptr<CertificateAuthority> ta;
  std::unique_ptr<CertificateAuthority> isp;
  uint64_t roa_serial = 0;
};

TEST_F(PipelineTest, ValidTreeYieldsAllVrps) {
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  EXPECT_TRUE(out.rejected.empty())
      << (out.rejected.empty() ? "" : out.rejected[0].reason);
  EXPECT_EQ(out.vrps.size(), 2u);
  EXPECT_EQ(out.publication_points_visited, 2);
  EXPECT_TRUE(out.accepted(
      Roa(P("185.40.0.0/16"), net::Asn(64500), Tal::kRipe, 20)));
}

TEST_F(PipelineTest, UnknownTalYieldsNothing) {
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  TrustAnchorLocator bogus{"BOGUS", KeyPair::derive(999).public_id, "BOGUS"};
  ValidatorOutput out = run_validator(repo, {bogus}, now);
  EXPECT_TRUE(out.vrps.empty());
  ASSERT_EQ(out.rejected.size(), 1u);
  EXPECT_EQ(out.rejected[0].reason, "missing-publication-point");
}

TEST_F(PipelineTest, TamperedRoaIsRejected) {
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  // Attacker rewrites the ROA's ASN without being able to re-sign.
  repo.find("example-isp")->roas[0].payload.asn = net::Asn(666);
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  EXPECT_EQ(out.vrps.size(), 1u);  // the TA's own ROA survives
  bool roa_rejected = false;
  for (const ValidationIssue& issue : out.rejected) {
    // The tampered object no longer matches the manifest digest.
    if (issue.reason == "not-in-manifest") roa_rejected = true;
  }
  EXPECT_TRUE(roa_rejected);
}

TEST_F(PipelineTest, RevokedRoaIsRejected) {
  isp->revoke(roa_serial);
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  EXPECT_EQ(out.vrps.size(), 1u);
  ASSERT_FALSE(out.rejected.empty());
  EXPECT_EQ(out.rejected[0].reason, "revoked");
}

TEST_F(PipelineTest, ExpiredCertificateIsRejected) {
  net::Date now = D("2027-01-01");  // ISP cert expired, TA still valid
  RpkiRepository repo = publish(now);
  // Manifests are freshly published, so only the cert expiry bites.
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  bool expired = false;
  for (const ValidationIssue& issue : out.rejected) {
    if (issue.object == "cert:example-isp" && issue.reason == "expired") {
      expired = true;
    }
  }
  EXPECT_TRUE(expired);
}

TEST_F(PipelineTest, OverclaimingChildIsRejected) {
  // A child claiming space outside its parent: the RFC 6487 §7 check.
  net::IntervalSet foreign;
  foreign.insert(P("8.0.0.0/8"));  // not RIPE's
  CertificateAuthority rogue = ta->delegate_unchecked(
      "rogue", 3003, foreign, years("2019-01-01", "2026-01-01"));
  rogue.issue_roa(Roa(P("8.1.0.0/16"), net::Asn(666), Tal::kRipe),
                  years("2019-01-01", "2025-01-01"));
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  repo.points.emplace_back("rogue", rogue.publish(now));
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  bool overclaim = false;
  for (const ValidationIssue& issue : out.rejected) {
    if (issue.object == "cert:rogue" && issue.reason == "overclaim") {
      overclaim = true;
    }
  }
  EXPECT_TRUE(overclaim);
  // The rogue ROA never makes it in.
  EXPECT_FALSE(out.accepted(Roa(P("8.1.0.0/16"), net::Asn(666), Tal::kRipe)));
}

TEST_F(PipelineTest, DelegateRejectsOverclaimByDefault) {
  net::IntervalSet foreign;
  foreign.insert(P("8.0.0.0/8"));
  EXPECT_THROW(
      ta->delegate("x", 1, foreign, years("2019-01-01", "2026-01-01")),
      InvariantError);
}

TEST_F(PipelineTest, StaleManifestRejectsPoint) {
  net::Date published = D("2021-06-01");
  RpkiRepository repo = publish(published);
  // Validate three weeks later: the weekly manifests have gone stale.
  ValidatorOutput out =
      run_validator(repo, {ta->tal()}, published + 21);
  EXPECT_TRUE(out.vrps.empty());
  ASSERT_FALSE(out.rejected.empty());
  EXPECT_EQ(out.rejected[0].reason, "stale-manifest");
}

TEST_F(PipelineTest, WithheldObjectIsDetected) {
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  // A malicious repository hides the child cert from the manifest... by
  // swapping in a manifest that no longer matches.
  PublicationPoint* point = repo.find("example-isp");
  point->roas.push_back(point->roas[0]);
  point->roas.back().serial = 999;  // replayed object not on manifest
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  bool detected = false;
  for (const ValidationIssue& issue : out.rejected) {
    if (issue.reason == "not-in-manifest") detected = true;
  }
  EXPECT_TRUE(detected);
}

// --- RTR -------------------------------------------------------------------

TEST(Rtr, PduSerializationRoundTrip) {
  std::vector<Pdu> pdus;
  {
    Pdu p;
    p.type = PduType::kSerialNotify;
    p.session_id = 7;
    p.serial = 42;
    pdus.push_back(p);
    p.type = PduType::kSerialQuery;
    pdus.push_back(p);
    Pdu q;
    q.type = PduType::kResetQuery;
    pdus.push_back(q);
    Pdu c;
    c.type = PduType::kCacheResponse;
    c.session_id = 7;
    pdus.push_back(c);
    Pdu v;
    v.type = PduType::kIpv4Prefix;
    v.announce = false;
    v.vrp = Vrp{net::Prefix::parse("10.0.0.0/8"), 24, net::Asn(64500)};
    pdus.push_back(v);
    Pdu e;
    e.type = PduType::kEndOfData;
    e.session_id = 7;
    e.serial = 42;
    pdus.push_back(e);
    Pdu err;
    err.type = PduType::kErrorReport;
    err.error_code = 3;
    err.error_text = "boom";
    pdus.push_back(err);
  }
  std::string wire;
  for (const Pdu& p : pdus) wire += serialize_pdu(p);
  std::vector<Pdu> parsed = parse_pdus(wire);
  ASSERT_EQ(parsed.size(), pdus.size());
  for (size_t i = 0; i < pdus.size(); ++i) {
    EXPECT_EQ(parsed[i].type, pdus[i].type) << i;
  }
  EXPECT_EQ(parsed[4].vrp.prefix.to_string(), "10.0.0.0/8");
  EXPECT_EQ(parsed[4].vrp.max_length, 24);
  EXPECT_FALSE(parsed[4].announce);
  EXPECT_EQ(parsed[6].error_text, "boom");
}

TEST(Rtr, ParserRejectsGarbage) {
  EXPECT_THROW(parse_pdus("\x02\x00"), ParseError);  // bad version
  std::string bad_len = serialize_pdu(Pdu{});
  bad_len[5] = 99;  // corrupt the length field (bytes 4..7, big-endian)
  EXPECT_THROW(parse_pdus(bad_len), ParseError);
  // Prefix PDU with max_length < prefix length.
  Pdu v;
  v.type = PduType::kIpv4Prefix;
  v.vrp = Vrp{net::Prefix::parse("10.0.0.0/24"), 24, net::Asn(1)};
  std::string wire = serialize_pdu(v);
  wire[10] = 8;  // maxlen byte (offset 10) -> 8 < plen 24
  EXPECT_THROW(parse_pdus(wire), ParseError);
}

TEST(Rtr, FullSyncThenIncremental) {
  RtrServer server(11);
  Vrp a{net::Prefix::parse("10.0.0.0/16"), 16, net::Asn(1)};
  Vrp b{net::Prefix::parse("11.0.0.0/16"), 24, net::Asn(2)};
  Vrp c{net::Prefix::parse("12.0.0.0/16"), 16, net::Asn(3)};
  server.update({a, b});

  RtrClient client;
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  EXPECT_EQ(client.table_size(), 2u);
  EXPECT_EQ(*client.serial(), 1u);

  // Server changes: +c, -a. The client syncs incrementally.
  server.update({b, c});
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  EXPECT_EQ(client.table_size(), 2u);
  EXPECT_EQ(*client.serial(), 2u);
  EXPECT_EQ(client.validate(net::Prefix::parse("12.0.0.0/16"), net::Asn(3)),
            Validity::kValid);
  EXPECT_EQ(client.validate(net::Prefix::parse("10.0.0.0/16"), net::Asn(1)),
            Validity::kNotFound);  // withdrawn
}

TEST(Rtr, StaleSerialTriggersCacheResetAndResync) {
  RtrServer server(11);
  server.update({Vrp{net::Prefix::parse("10.0.0.0/16"), 16, net::Asn(1)}});
  RtrClient client;
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  ASSERT_EQ(client.table_size(), 1u);

  // A second server instance has no diff history for the client's serial.
  RtrServer reborn(11);
  reborn.update({Vrp{net::Prefix::parse("11.0.0.0/16"), 16, net::Asn(2)}});
  reborn.update({Vrp{net::Prefix::parse("11.0.0.0/16"), 16, net::Asn(2)},
                 Vrp{net::Prefix::parse("12.0.0.0/16"), 16, net::Asn(3)}});
  // Client's serial (1) exists but rebirth lost the diff chain... serial 1
  // diff exists here; use serial 5 to force the reset path.
  Pdu stale;
  stale.type = PduType::kSerialQuery;
  stale.session_id = 11;
  stale.serial = 5;
  client.consume(reborn.handle(stale));
  EXPECT_EQ(client.table_size(), 0u);       // cache reset clears state
  EXPECT_FALSE(client.serial().has_value());
  // The next poll is a reset query; full table arrives.
  client.consume(reborn.handle(parse_pdus(client.poll())[0]));
  EXPECT_EQ(client.table_size(), 2u);
}

TEST(Rtr, SerialLtIsRfc1982Comparison) {
  EXPECT_TRUE(serial_lt(5, 6));
  EXPECT_FALSE(serial_lt(6, 5));
  EXPECT_FALSE(serial_lt(7, 7));
  // Across the wraparound: 0xffffffff precedes 0, 0 precedes 1.
  EXPECT_TRUE(serial_lt(0xffffffffu, 0));
  EXPECT_FALSE(serial_lt(0, 0xffffffffu));
  EXPECT_TRUE(serial_lt(0xfffffff0u, 0x10));
  // Half the space forward is "greater"; past half it flips sign.
  EXPECT_TRUE(serial_lt(0, 0x7fffffffu));
  EXPECT_FALSE(serial_lt(0, 0x80000001u));
}

// The regression pinned by serial_lt: a cache whose serial wraps past 2^32
// must keep serving incremental diffs to a router holding a pre-wrap
// serial. With plain `<` the cache would read the router's 0xffffffff as
// "from the future" and answer Cache Reset — a gratuitous full resync of
// every client at the wrap.
TEST(Rtr, SerialQuerySurvivesWraparound) {
  RtrServer server(11, 0xfffffffeu);
  Vrp a{net::Prefix::parse("10.0.0.0/16"), 16, net::Asn(1)};
  Vrp b{net::Prefix::parse("11.0.0.0/16"), 16, net::Asn(2)};
  Vrp c{net::Prefix::parse("12.0.0.0/16"), 16, net::Asn(3)};
  EXPECT_EQ(server.update({a}), 0xffffffffu);

  RtrClient client;
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  ASSERT_EQ(client.table_size(), 1u);
  ASSERT_EQ(*client.serial(), 0xffffffffu);

  // The next update wraps the cache serial to 0. The client's serial query
  // carries 0xffffffff and must get the incremental diff, not a reset.
  EXPECT_EQ(server.update({a, b}), 0u);
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  EXPECT_FALSE(client.needs_resync());
  EXPECT_EQ(client.table_size(), 2u);
  EXPECT_EQ(*client.serial(), 0u);
  EXPECT_EQ(client.validate(net::Prefix::parse("11.0.0.0/16"), net::Asn(2)),
            Validity::kValid);

  // And again on the far side of the wrap.
  EXPECT_EQ(server.update({b, c}), 1u);
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  EXPECT_FALSE(client.needs_resync());
  EXPECT_EQ(client.table_size(), 2u);
  EXPECT_EQ(*client.serial(), 1u);
  EXPECT_EQ(client.validate(net::Prefix::parse("10.0.0.0/16"), net::Asn(1)),
            Validity::kNotFound);  // withdrawn across the wrap

  // A pre-wrap serial whose diff chain is gone still resets cleanly.
  Pdu ancient;
  ancient.type = PduType::kSerialQuery;
  ancient.session_id = 11;
  ancient.serial = 0xfffffff0u;
  client.consume(server.handle(ancient));
  EXPECT_TRUE(client.needs_resync());
  client.consume(server.handle(parse_pdus(client.poll())[0]));
  EXPECT_EQ(client.table_size(), 2u);
}

TEST(Rtr, ValidateMatchesArchiveSemantics) {
  RoaArchive archive;
  net::Date d = D("2021-01-01");
  archive.publish(Roa(P("10.0.0.0/16"), net::Asn(1), Tal::kRipe, 20), d);
  archive.publish(Roa(P("20.0.0.0/16"), net::Asn::as0(), Tal::kRipe), d);
  std::vector<Vrp> vrps;
  for (const Roa& roa : archive.live_roas(d + 1)) {
    vrps.push_back(Vrp::from_roa(roa));
  }
  RtrServer server(5);
  server.update(vrps);
  RtrClient client;
  client.consume(server.handle(parse_pdus(client.poll())[0]));

  for (const char* prefix : {"10.0.0.0/16", "10.0.0.0/20", "10.0.0.0/24",
                             "20.0.0.0/16", "20.1.0.0/16", "30.0.0.0/8"}) {
    for (uint32_t asn : {1u, 2u}) {
      EXPECT_EQ(client.validate(P(prefix), net::Asn(asn)),
                archive.validate_route(P(prefix), net::Asn(asn), d + 1))
          << prefix << " AS" << asn;
    }
  }
}

TEST_F(PipelineTest, EndToEndValidatorToRouter) {
  // CA tree -> validator -> VRPs -> RTR -> router-side ROV.
  net::Date now = D("2021-06-01");
  RpkiRepository repo = publish(now);
  ValidatorOutput out = run_validator(repo, {ta->tal()}, now);
  std::vector<Vrp> vrps;
  for (const Roa& roa : out.vrps) vrps.push_back(Vrp::from_roa(roa));

  RtrServer cache(99);
  cache.update(vrps);
  RtrClient router;
  router.consume(cache.handle(parse_pdus(router.poll())[0]));
  EXPECT_EQ(router.table_size(), 2u);

  EXPECT_EQ(router.validate(P("185.40.0.0/16"), net::Asn(64500)),
            Validity::kValid);
  EXPECT_EQ(router.validate(P("185.40.0.0/20"), net::Asn(64500)),
            Validity::kValid);  // within maxLength 20
  EXPECT_EQ(router.validate(P("185.40.0.0/24"), net::Asn(64500)),
            Validity::kInvalid);  // beyond maxLength
  EXPECT_EQ(router.validate(P("185.40.0.0/16"), net::Asn(666)),
            Validity::kInvalid);
  EXPECT_EQ(router.validate(P("185.44.0.0/16"), net::Asn(1)),
            Validity::kNotFound);
}

TEST(RepositoryBuilder, WorldRoundTripsThroughValidatorAndRtr) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  net::Date today = config.window_end;

  BuiltRepository built =
      build_repository(world->roas, world->registry, today);
  ASSERT_FALSE(built.production_tals.empty());

  // Every live ROA survives the object-level validator; nothing extra.
  ValidatorOutput out =
      run_validator(built.repository, built.all_tals(), today);
  EXPECT_TRUE(out.rejected.empty())
      << out.rejected.size() << " rejections, first: "
      << (out.rejected.empty() ? "" : out.rejected[0].object + " " +
                                          out.rejected[0].reason);
  EXPECT_EQ(out.vrps.size(),
            world->roas.live_roas(today, TalSet::all()).size());

  // The router's RFC 6811 verdicts match the archive's for a sample of
  // real announcements.
  std::vector<Vrp> vrps;
  for (const Roa& roa : out.vrps) vrps.push_back(Vrp::from_roa(roa));
  RtrServer cache(1);
  cache.update(vrps);
  RtrClient router;
  router.consume(cache.handle(parse_pdus(router.poll())[0]));

  int checked = 0;
  for (const net::Prefix& p : world->fleet.announced_prefixes_on(today)) {
    if (++checked > 200) break;
    for (net::Asn origin : world->fleet.origins_on(p, today)) {
      EXPECT_EQ(router.validate(p, origin),
                world->roas.validate_route(p, origin, today, TalSet::all()))
          << p.to_string() << " " << origin.to_string();
    }
  }
}

TEST(RepositoryBuilder, As0TalsOnlyAppearOncePolicyIsLive) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  // Before the APNIC policy date no AS0 ROAs exist, so no AS0 TALs either.
  BuiltRepository before = build_repository(
      world->roas, world->registry, net::Date::parse("2020-08-01"));
  EXPECT_TRUE(before.as0_tals.empty());
  BuiltRepository after =
      build_repository(world->roas, world->registry, config.window_end);
  EXPECT_EQ(after.as0_tals.size(), 2u);
}

// Property: a client kept in sync through any sequence of incremental
// updates holds exactly the server's current VRP set.
class RtrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RtrPropertyTest, IncrementalSyncConverges) {
  sim::Rng rng(GetParam());
  RtrServer server(static_cast<uint16_t>(GetParam() & 0xffff));
  RtrClient client;

  std::vector<Vrp> pool;
  for (int i = 0; i < 40; ++i) {
    int len = 12 + static_cast<int>(rng.below(13));
    pool.push_back(Vrp{
        net::Prefix::containing(net::Ipv4(static_cast<uint32_t>(rng.next())),
                                len),
        len + static_cast<int>(rng.below(static_cast<uint64_t>(33 - len))),
        net::Asn(static_cast<uint32_t>(1 + rng.below(1000)))});
  }

  std::vector<Vrp> current;
  for (int round = 0; round < 12; ++round) {
    // Random churn: each pool entry present with p=0.5 this round.
    current.clear();
    for (const Vrp& vrp : pool) {
      if (rng.chance(0.5)) current.push_back(vrp);
    }
    server.update(current);
    client.consume(server.handle(parse_pdus(client.poll())[0]));
    ASSERT_EQ(client.serial().value(), server.serial());
    std::vector<Vrp> have = client.table();
    std::vector<Vrp> want = current;
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
    ASSERT_EQ(have, want) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtrPropertyTest,
                         ::testing::Values(3ULL, 17ULL, 404ULL));

}  // namespace
}  // namespace droplens::rpki
