// Targeted coverage of smaller public surfaces not exercised elsewhere.
#include <gtest/gtest.h>

#include "bgp/fleet.hpp"
#include "drop/category.hpp"
#include "irr/database.hpp"
#include "rir/rir.hpp"
#include "rpki/roa.hpp"
#include "rpki/roa_csv.hpp"
#include "sim/rng.hpp"
#include "util/error.hpp"

namespace droplens {
namespace {

net::Date D(int d) { return net::Date(d); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(RngExtras, GeometricIsCappedAndNonNegative) {
  sim::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    int g = rng.geometric(0.3, 10);
    EXPECT_GE(g, 0);
    EXPECT_LE(g, 10);
  }
  EXPECT_EQ(rng.geometric(1.0, 10), 0);
}

TEST(RngExtras, ForkDecorrelates) {
  sim::Rng a(7);
  sim::Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CategorySet, AllAbbreviationsAndNamesDistinct) {
  std::set<std::string> abbrevs, names;
  for (drop::Category c : drop::kAllCategories) {
    abbrevs.insert(std::string(drop::abbrev(c)));
    names.insert(std::string(drop::full_name(c)));
  }
  EXPECT_EQ(abbrevs.size(), drop::kAllCategories.size());
  EXPECT_EQ(names.size(), drop::kAllCategories.size());
}

TEST(IrrDatabase, LiveCountTracksLifetimes) {
  irr::Database db;
  irr::RouteObject obj;
  obj.prefix = P("10.0.0.0/16");
  obj.origin = net::Asn(1);
  obj.created = D(10);
  db.register_object(obj);
  obj.prefix = P("11.0.0.0/16");
  obj.created = D(20);
  db.register_object(obj);
  db.remove_object(P("10.0.0.0/16"), net::Asn(1), D(30));
  EXPECT_EQ(db.live_count(D(5)), 0u);
  EXPECT_EQ(db.live_count(D(15)), 1u);
  EXPECT_EQ(db.live_count(D(25)), 2u);
  EXPECT_EQ(db.live_count(D(35)), 1u);
  EXPECT_EQ(db.total_registrations(), 2u);
}

TEST(Fleet, EpisodesCoveredByWalksSubtree) {
  bgp::CollectorFleet fleet;
  uint32_t c = fleet.add_collector("rv");
  fleet.add_peer(c, net::Asn(1));
  fleet.announce(P("10.0.0.0/8"), bgp::AsPath{net::Asn(8)}, {D(0), D(10)});
  fleet.announce(P("10.2.0.0/16"), bgp::AsPath{net::Asn(16)}, {D(0), D(10)});
  fleet.announce(P("11.0.0.0/8"), bgp::AsPath{net::Asn(11)}, {D(0), D(10)});
  auto covered = fleet.episodes_covered_by(P("10.0.0.0/8"));
  EXPECT_EQ(covered.size(), 2u);
  auto all = fleet.episodes_covered_by(net::Prefix());  // 0.0.0.0/0
  EXPECT_EQ(all.size(), 3u);
}

TEST(Fleet, CollectorBookkeeping) {
  bgp::CollectorFleet fleet;
  uint32_t c0 = fleet.add_collector("rv0");
  uint32_t c1 = fleet.add_collector("rv1");
  fleet.add_peer(c0, net::Asn(1));
  fleet.add_peer(c1, net::Asn(2));
  fleet.add_peer(c1, net::Asn(3), /*full_table=*/false);
  EXPECT_EQ(fleet.collector_count(), 2u);
  EXPECT_EQ(fleet.peer_count(), 3u);
  EXPECT_EQ(fleet.full_table_peer_count(), 2u);
  EXPECT_EQ(fleet.collectors()[1].peers.size(), 2u);
  EXPECT_THROW(fleet.add_peer(99, net::Asn(4)), InvariantError);
}

TEST(Fleet, PartialTablePeersDoNotCountTowardObservers) {
  bgp::CollectorFleet fleet;
  uint32_t c = fleet.add_collector("rv");
  fleet.add_peer(c, net::Asn(1));
  fleet.add_peer(c, net::Asn(2), /*full_table=*/false);
  fleet.announce(P("10.0.0.0/8"), bgp::AsPath{net::Asn(5)},
                 {D(0), net::DateRange::unbounded()});
  EXPECT_EQ(fleet.observing_peers(P("10.0.0.0/8"), D(1)), 1u);
}

TEST(RirNames, DisplayAndDelegationNamesDiffer) {
  EXPECT_EQ(rir::display_name(rir::Rir::kRipe), "RIPE NCC");
  EXPECT_EQ(rir::delegation_name(rir::Rir::kRipe), "ripencc");
}

TEST(Roa, ToStringShowsMaxLengthAndTal) {
  rpki::Roa roa(P("10.0.0.0/16"), net::Asn(64500), rpki::Tal::kApnic, 24);
  std::string s = roa.to_string();
  EXPECT_NE(s.find("10.0.0.0/16-24"), std::string::npos);
  EXPECT_NE(s.find("AS64500"), std::string::npos);
  EXPECT_NE(s.find("APNIC"), std::string::npos);
  rpki::Roa plain(P("10.0.0.0/16"), net::Asn(1), rpki::Tal::kRipe);
  EXPECT_EQ(plain.to_string().find("-16"), std::string::npos);
}

TEST(RoaCsv, EveryTalHostRoundTrips) {
  rpki::RoaArchive archive;
  net::Date d = D(18000);
  int i = 0;
  for (rpki::Tal tal : rpki::kAllTals) {
    net::Prefix p = net::Prefix::containing(
        net::Ipv4(static_cast<uint32_t>((i + 1) << 24)), 16);
    archive.publish(
        rpki::Roa(p, tal == rpki::Tal::kApnicAs0 || tal == rpki::Tal::kLacnicAs0
                         ? net::Asn::as0()
                         : net::Asn(100 + static_cast<uint32_t>(i)),
                  tal),
        d);
    ++i;
  }
  std::string csv = rpki::write_roa_csv(archive, d + 1, rpki::TalSet::all());
  auto records = rpki::parse_roa_csv(csv);
  ASSERT_EQ(records.size(), rpki::kAllTals.size());
  std::set<rpki::Tal> tals;
  for (const rpki::RoaRecord& r : records) tals.insert(r.roa.tal);
  EXPECT_EQ(tals.size(), rpki::kAllTals.size());
}

}  // namespace
}  // namespace droplens
