#include <gtest/gtest.h>

#include "sim/generator.hpp"
#include "sim/rng.hpp"

namespace droplens::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(9);
  std::vector<double> w = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 4000, 0.75, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

class SmallWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ScenarioConfig(ScenarioConfig::small());
    world_ = generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  static ScenarioConfig* config_;
  static World* world_;
};

ScenarioConfig* SmallWorldTest::config_ = nullptr;
World* SmallWorldTest::world_ = nullptr;

TEST_F(SmallWorldTest, DropPopulationMatchesConfig) {
  EXPECT_EQ(world_->drop.all_prefixes().size(),
            static_cast<size_t>(config_->total_drop_prefixes()));
}

TEST_F(SmallWorldTest, FleetShapeMatchesConfig) {
  EXPECT_EQ(world_->fleet.collector_count(),
            static_cast<size_t>(config_->collectors));
  EXPECT_EQ(world_->fleet.full_table_peer_count(),
            static_cast<size_t>(config_->full_table_peers));
  EXPECT_EQ(world_->truth.drop_filtering_peers.size(),
            static_cast<size_t>(config_->drop_filtering_peers));
}

TEST_F(SmallWorldTest, UnallocatedPrefixesAreTrulyUnallocated) {
  ASSERT_EQ(world_->truth.unallocated_prefixes.size(),
            static_cast<size_t>(config_->unallocated_drop));
  for (const net::Prefix& p : world_->truth.unallocated_prefixes) {
    net::Date listed = *world_->drop.first_listed(p);
    EXPECT_TRUE(world_->registry.is_fully_unallocated(p, listed))
        << p.to_string();
    EXPECT_TRUE(world_->registry.rir_of(p).has_value());
  }
}

TEST_F(SmallWorldTest, ForgedIrrPrefixesHaveMatchingRouteObjects) {
  ASSERT_EQ(world_->truth.forged_irr_prefixes.size(),
            static_cast<size_t>(config_->forged_irr_hijacks));
  for (const net::Prefix& p : world_->truth.forged_irr_prefixes) {
    net::Date listed = *world_->drop.first_listed(p);
    // The SBL record names the hijacking ASN...
    const drop::SblRecord* rec = world_->sbl.find_by_prefix(p);
    ASSERT_NE(rec, nullptr) << p.to_string();
    drop::Classification c = drop::Classifier().classify(rec->text);
    ASSERT_TRUE(c.malicious_asn.has_value());
    // ...and a route object with exactly that origin existed.
    bool found = false;
    for (const irr::Registration& reg : world_->irr.history(p)) {
      found |= reg.object.origin == *c.malicious_asn;
    }
    EXPECT_TRUE(found) << p.to_string();
    (void)listed;
  }
}

TEST_F(SmallWorldTest, RemovedPrefixesAreOffTheListAtWindowEnd) {
  for (const net::Prefix& p : world_->truth.removed_from_drop) {
    EXPECT_FALSE(world_->drop.listed_on(p, config_->window_end))
        << p.to_string();
    EXPECT_TRUE(world_->drop.first_listed(p).has_value());
  }
}

TEST_F(SmallWorldTest, CaseStudyPlanted) {
  EXPECT_EQ(world_->truth.case_study_prefix.to_string(), "132.255.0.0/22");
  EXPECT_EQ(world_->truth.case_study_siblings.size(), 6u);
  // The /22 is signed and hijack-announced with the ROA ASN at listing.
  net::Date listed = *world_->drop.first_listed(world_->truth.case_study_prefix);
  EXPECT_TRUE(world_->roas.signed_on(world_->truth.case_study_prefix, listed));
  auto origins =
      world_->fleet.origins_on(world_->truth.case_study_prefix, listed);
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(world_->roas.validate_route(world_->truth.case_study_prefix,
                                        origins[0], listed),
            rpki::Validity::kValid);
}

TEST_F(SmallWorldTest, WithdrawnPrefixesAreGoneWithin30Days) {
  for (const net::Prefix& p : world_->truth.withdrawn_within_30d) {
    net::Date listed = *world_->drop.first_listed(p);
    EXPECT_FALSE(world_->fleet.announced_on(p, listed + 31))
        << p.to_string();
  }
}

TEST_F(SmallWorldTest, FilteringPeersRejectListedPrefixes) {
  for (bgp::PeerId id : world_->truth.drop_filtering_peers) {
    const bgp::Peer& peer = world_->fleet.peer(id);
    ASSERT_TRUE(static_cast<bool>(peer.reject));
    net::Prefix listed_prefix = world_->truth.unallocated_prefixes.front();
    net::Date listed = *world_->drop.first_listed(listed_prefix);
    EXPECT_TRUE(peer.rejects(listed_prefix, listed + 1));
    EXPECT_FALSE(peer.rejects(listed_prefix, listed - 10));
  }
}

TEST(Determinism, SameSeedSameWorld) {
  ScenarioConfig config = ScenarioConfig::small();
  auto w1 = generate(config);
  auto w2 = generate(config);
  auto p1 = w1->drop.all_prefixes();
  auto p2 = w2->drop.all_prefixes();
  ASSERT_EQ(p1, p2);
  EXPECT_EQ(w1->roas.total_published(), w2->roas.total_published());
  EXPECT_EQ(w1->irr.total_registrations(), w2->irr.total_registrations());
}

TEST(Determinism, DifferentSeedDifferentWorld) {
  ScenarioConfig a = ScenarioConfig::small();
  ScenarioConfig b = ScenarioConfig::small();
  b.seed ^= 1;
  auto w1 = generate(a);
  auto w2 = generate(b);
  EXPECT_NE(w1->drop.all_prefixes(), w2->drop.all_prefixes());
}

}  // namespace
}  // namespace droplens::sim
