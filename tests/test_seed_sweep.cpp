// Seed-sweep robustness: the calibration must hold for ANY seed, not just
// the default — exact counts are quota-pinned, detections are structural.
#include <gtest/gtest.h>

#include "core/case_study.hpp"
#include "core/drop_index.hpp"
#include "core/irr_analysis.hpp"
#include "core/visibility.hpp"
#include "sim/generator.hpp"

namespace droplens {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, InvariantsHoldAcrossSeeds) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  config.seed = GetParam();
  std::unique_ptr<sim::World> world = sim::generate(config);
  core::Study study{world->registry, world->fleet,  world->irr,
                    world->roas,     world->drop,   world->sbl,
                    config.window_begin, config.window_end};
  core::DropIndex index = core::DropIndex::build(study);

  // Exact population counts.
  EXPECT_EQ(world->drop.all_prefixes().size(),
            static_cast<size_t>(config.total_drop_prefixes()));
  EXPECT_EQ(world->truth.unallocated_prefixes.size(),
            static_cast<size_t>(config.unallocated_drop));
  EXPECT_EQ(world->truth.forged_irr_prefixes.size(),
            static_cast<size_t>(config.forged_irr_hijacks));

  // Structural detections.
  core::CaseStudyResult cs = core::analyze_case_study(study, index);
  ASSERT_EQ(cs.valid_hijacks.size(), 1u) << "seed " << config.seed;
  EXPECT_EQ(cs.valid_hijacks[0].prefix.to_string(), "132.255.0.0/22");
  EXPECT_EQ(cs.valid_hijacks[0].siblings.size(), 6u);

  core::VisibilityResult vis = core::analyze_visibility(study, index);
  EXPECT_EQ(vis.filtering_peers, config.drop_filtering_peers)
      << "seed " << config.seed;

  core::IrrResult irr = core::analyze_irr(study, index);
  EXPECT_EQ(irr.hijacker_asn_in_route_object, config.forged_irr_hijacks);
  EXPECT_EQ(irr.unallocated_with_route_object, 1);
  ASSERT_TRUE(irr.serial_common_transit.has_value());
  EXPECT_EQ(irr.serial_common_transit->value(), 50509u);

  // Incident detection recovers exactly the planted clusters.
  size_t incidents = 0;
  for (const core::DropEntry& e : index.entries()) incidents += e.incident;
  EXPECT_EQ(incidents, world->truth.incident_prefixes.size())
      << "seed " << config.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1ULL, 99ULL, 20260707ULL,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace droplens
