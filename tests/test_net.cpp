#include <gtest/gtest.h>

#include "net/asn.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "sim/rng.hpp"
#include "util/error.hpp"

namespace droplens::net {
namespace {

TEST(Ipv4, ParseAndFormat) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255").value(), 0xffffffffu);
  EXPECT_EQ(Ipv4::parse("192.0.2.1").value(), 0xc0000201u);
  EXPECT_EQ(Ipv4(0xc0000201u).to_string(), "192.0.2.1");
}

TEST(Ipv4, RejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.x",
                          "1..2.3", " 1.2.3.4", "1.2.3.4 "}) {
    EXPECT_THROW(Ipv4::parse(bad), ParseError) << bad;
  }
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4::parse("9.0.0.0"), Ipv4::parse("10.0.0.0"));
}

TEST(Asn, As0IsSpecial) {
  EXPECT_TRUE(Asn::as0().is_as0());
  EXPECT_FALSE(Asn(64500).is_as0());
  EXPECT_EQ(Asn(64500).to_string(), "AS64500");
}

TEST(Prefix, ParseFormatRoundTrip) {
  for (const char* s : {"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24",
                        "132.255.0.0/22", "255.255.255.255/32"}) {
    EXPECT_EQ(Prefix::parse(s).to_string(), s);
  }
}

TEST(Prefix, RejectsHostBits) {
  EXPECT_THROW(Prefix::parse("10.0.0.1/8"), InvariantError);
  EXPECT_THROW(Prefix(Ipv4::parse("192.0.2.1"), 24), InvariantError);
}

TEST(Prefix, RejectsBadLength) {
  EXPECT_THROW(Prefix::parse("10.0.0.0/33"), ParseError);
  EXPECT_THROW(Prefix::parse("10.0.0.0"), ParseError);
  EXPECT_THROW(Prefix(Ipv4(0), 33), InvariantError);
}

TEST(Prefix, ContainingMasksHostBits) {
  EXPECT_EQ(Prefix::containing(Ipv4::parse("192.0.2.77"), 24).to_string(),
            "192.0.2.0/24");
  EXPECT_EQ(Prefix::containing(Ipv4::parse("192.0.2.77"), 32).to_string(),
            "192.0.2.77/32");
}

TEST(Prefix, SizeAndSlash8) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/8").size(), uint64_t{1} << 24);
  EXPECT_EQ(Prefix::parse("0.0.0.0/0").size(), uint64_t{1} << 32);
  EXPECT_DOUBLE_EQ(Prefix::parse("10.0.0.0/8").slash8_equivalents(), 1.0);
  EXPECT_DOUBLE_EQ(Prefix::parse("10.0.0.0/10").slash8_equivalents(), 0.25);
}

TEST(Prefix, Contains) {
  Prefix p = Prefix::parse("192.0.0.0/16");
  EXPECT_TRUE(p.contains(Prefix::parse("192.0.2.0/24")));
  EXPECT_TRUE(p.contains(p));
  EXPECT_FALSE(p.contains(Prefix::parse("192.0.0.0/8")));
  EXPECT_FALSE(p.contains(Prefix::parse("192.1.0.0/24")));
  EXPECT_TRUE(p.contains(Ipv4::parse("192.0.255.255")));
  EXPECT_FALSE(p.contains(Ipv4::parse("192.1.0.0")));
}

TEST(Prefix, ParentChildRoundTrip) {
  Prefix p = Prefix::parse("192.0.2.0/24");
  EXPECT_EQ(p.child(0).parent(), p);
  EXPECT_EQ(p.child(1).parent(), p);
  EXPECT_NE(p.child(0), p.child(1));
  EXPECT_TRUE(p.contains(p.child(0)));
  EXPECT_TRUE(p.contains(p.child(1)));
  EXPECT_THROW(Prefix().parent(), InvariantError);
  EXPECT_THROW(Prefix::parse("1.2.3.4/32").child(0), InvariantError);
}

TEST(Prefix, ChildrenPartitionParent) {
  Prefix p = Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.child(0).size() + p.child(1).size(), p.size());
  EXPECT_EQ(p.child(0).first(), p.first());
  EXPECT_EQ(p.child(1).end(), p.end());
}

TEST(Prefix, BitExtraction) {
  Prefix p = Prefix::parse("128.0.0.0/1");
  EXPECT_EQ(p.bit(0), 1);
  Prefix q = Prefix::parse("64.0.0.0/2");
  EXPECT_EQ(q.bit(0), 0);
  EXPECT_EQ(q.bit(1), 1);
}

// Property sweep: parse∘format identity, containment partial order, and
// power-of-two sizes over random prefixes.
class PrefixPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefixPropertyTest, RandomInvariants) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    int len = static_cast<int>(rng.below(33));
    Prefix p = Prefix::containing(
        Ipv4(static_cast<uint32_t>(rng.next())), len);
    // parse∘format = id
    EXPECT_EQ(Prefix::parse(p.to_string()), p);
    // size is a power of two
    EXPECT_EQ(p.size() & (p.size() - 1), 0u);
    // containment is reflexive and antisymmetric w.r.t. different lengths
    EXPECT_TRUE(p.contains(p));
    if (len > 0) {
      EXPECT_TRUE(p.parent().contains(p));
      EXPECT_FALSE(p.contains(p.parent()));
    }
    // transitivity up the chain
    if (len >= 2) {
      EXPECT_TRUE(p.parent().parent().contains(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace droplens::net
