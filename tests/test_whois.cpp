#include <gtest/gtest.h>

#include "irr/whois.hpp"

namespace droplens::irr {
namespace {

net::Date D(const char* s) { return net::Date::parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

class WhoisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RouteObject obj;
    obj.prefix = P("10.1.0.0/16");
    obj.origin = net::Asn(64500);
    obj.org_id = "ORG-A";
    obj.created = D("2020-01-01");
    db.register_object(obj);
    obj.prefix = P("10.1.2.0/24");
    obj.origin = net::Asn(64501);
    db.register_object(obj);
    obj.prefix = P("99.0.0.0/16");
    obj.origin = net::Asn(64500);
    obj.created = D("2021-05-01");
    db.register_object(obj);
    db.remove_object(P("99.0.0.0/16"), net::Asn(64500), D("2021-06-01"));

    sets["AS-EX"] = AsSet{"AS-EX", {net::Asn(64500)}, {"AS-SUB"}};
    sets["AS-SUB"] = AsSet{"AS-SUB", {net::Asn(64501)}, {}};
  }

  Database db;
  std::map<std::string, AsSet> sets;
};

TEST_F(WhoisTest, ExactRouteQuery) {
  WhoisServer server(db, D("2021-01-01"), sets);
  std::string resp = server.handle("!r10.1.0.0/16");
  EXPECT_EQ(resp.front(), 'A');
  EXPECT_NE(resp.find("route:"), std::string::npos);
  EXPECT_NE(resp.find("AS64500"), std::string::npos);
  EXPECT_EQ(resp.find("10.1.2.0/24"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 2), "C\n");
}

TEST_F(WhoisTest, MoreSpecificAndCoveringQueries) {
  WhoisServer server(db, D("2021-01-01"), sets);
  std::string more = server.handle("!r10.1.0.0/16,M");
  EXPECT_NE(more.find("10.1.2.0/24"), std::string::npos);
  std::string covering = server.handle("!r10.1.2.0/24,l");
  EXPECT_NE(covering.find("10.1.0.0/16"), std::string::npos);
}

TEST_F(WhoisTest, QueriesRespectTheDate) {
  // The removed 99/16 object answers before removal, not after.
  WhoisServer before(db, D("2021-05-15"), sets);
  EXPECT_EQ(before.handle("!r99.0.0.0/16").front(), 'A');
  WhoisServer after(db, D("2021-07-01"), sets);
  EXPECT_EQ(after.handle("!r99.0.0.0/16"), "D\n");
}

TEST_F(WhoisTest, OriginQuery) {
  WhoisServer server(db, D("2021-01-01"), sets);
  std::string resp = server.handle("!gAS64500");
  EXPECT_NE(resp.find("10.1.0.0/16"), std::string::npos);
  EXPECT_EQ(resp.find("10.1.2.0/24"), std::string::npos);
  EXPECT_EQ(server.handle("!gAS9999"), "D\n");
}

TEST_F(WhoisTest, AsSetExpansion) {
  WhoisServer server(db, D("2021-01-01"), sets);
  std::string resp = server.handle("!iAS-EX");
  EXPECT_NE(resp.find("AS64500"), std::string::npos);
  EXPECT_NE(resp.find("AS64501"), std::string::npos);
  EXPECT_EQ(server.handle("!iAS-NONE"), "D\n");
}

TEST_F(WhoisTest, ErrorsAreFrames) {
  WhoisServer server(db, D("2021-01-01"), sets);
  EXPECT_EQ(server.handle("hello").front(), 'F');
  EXPECT_EQ(server.handle("!x").front(), 'F');
  EXPECT_EQ(server.handle("!rnot-a-prefix").front(), 'F');
  EXPECT_EQ(server.handle("!r10.0.0.0/16,Z").front(), 'F');
  EXPECT_EQ(server.handle("!gbanana").front(), 'F');
}

TEST_F(WhoisTest, OriginQueryRejectsBadAsns) {
  WhoisServer server(db, D("2021-01-01"), sets);
  // Unparsable ASN text.
  EXPECT_EQ(server.handle("!gASbanana"), "F bad ASN\n");
  EXPECT_EQ(server.handle("!gAS"), "F bad ASN\n");
  // Beyond 32 bits: must be rejected, not silently truncated. AS4294967296
  // truncates to AS0 and AS4294967297 to AS1 — both would answer for the
  // wrong ASN.
  EXPECT_EQ(server.handle("!gAS4294967296"), "F bad ASN\n");
  EXPECT_EQ(server.handle("!gAS4294967297"), "F bad ASN\n");
  EXPECT_EQ(server.handle("!gAS99999999999999999999"), "F bad ASN\n");
  // The top of the valid range still answers (no data here, but no error).
  EXPECT_EQ(server.handle("!gAS4294967295"), "D\n");
}

TEST_F(WhoisTest, PayloadLengthIsAccurate) {
  WhoisServer server(db, D("2021-01-01"), sets);
  std::string resp = server.handle("!r10.1.0.0/16");
  // Frame: A<len>\n<payload>C\n
  size_t newline = resp.find('\n');
  size_t len = std::stoul(resp.substr(1, newline - 1));
  EXPECT_EQ(resp.size(), 1 + (newline - 1) + 1 + len + 2);
}

}  // namespace
}  // namespace droplens::irr
