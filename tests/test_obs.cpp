// The observability layer: registry interning and handle semantics, the
// no-op mode, histogram bucket mapping, the Prometheus renderer (golden
// output), span nesting, the concurrent-hammer race (this binary's TSan
// gate), the svc metrics op, and the cornerstone determinism contract:
// instrumentation never changes what the pipeline computes.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/data_quality.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "sim/generator.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/parse_report.hpp"
#include "util/thread_pool.hpp"

namespace droplens {
namespace {

TEST(Registry, HandlesShareCellsAndReacquisitionIsIdempotent) {
  obs::Registry reg;
  obs::Counter a = reg.counter("requests_total", {}, "help");
  obs::Counter b = reg.counter("requests_total");
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_TRUE(static_cast<bool>(a));
}

TEST(Registry, LabelsDistinguishSeries) {
  obs::Registry reg;
  obs::Counter drop = reg.counter("parsed", {{"feed", "drop"}});
  obs::Counter irr = reg.counter("parsed", {{"feed", "irr"}});
  drop.inc(7);
  irr.inc(2);
  EXPECT_EQ(drop.value(), 7u);
  EXPECT_EQ(irr.value(), 2u);
}

TEST(Registry, TypeAndBoundsMismatchesThrow) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1, 2}), std::logic_error);
  reg.histogram("h", {1, 2, 3});
  EXPECT_THROW(reg.histogram("h", {1, 2}), std::logic_error);
  EXPECT_NO_THROW(reg.histogram("h", {1, 2, 3}));
}

TEST(Registry, GaugeSetAddSub) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("depth");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
}

TEST(Registry, NoOpHandlesCostNothingAndReadZero) {
  // Nothing installed: ambient acquisition yields inert handles.
  ASSERT_EQ(obs::installed(), nullptr);
  obs::Counter c = obs::counter("ghost_total");
  obs::Gauge g = obs::gauge("ghost_depth");
  obs::Histogram h = obs::histogram("ghost_ns", obs::Registry::log2_bounds(4));
  c.inc();
  g.set(42);
  h.observe(100);
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_count(), 0u);
}

TEST(Registry, ScopedInstallRestoresPrevious) {
  obs::Registry outer;
  {
    obs::ScopedRegistry a(outer);
    EXPECT_EQ(obs::installed(), &outer);
    obs::Registry inner;
    {
      obs::ScopedRegistry b(inner);
      EXPECT_EQ(obs::installed(), &inner);
    }
    EXPECT_EQ(obs::installed(), &outer);
  }
  EXPECT_EQ(obs::installed(), nullptr);
}

TEST(Histogram, Log2BucketMappingMatchesBitWidth) {
  obs::Registry reg;
  obs::Histogram h =
      reg.histogram("lat", obs::Registry::log2_bounds(39));  // 40 buckets
  ASSERT_EQ(h.bucket_count(), 40u);
  // Bucket i counts values in [2^i, 2^(i+1)); 0 lands in bucket 0; values
  // at or past 2^39 land in the overflow bucket — exactly the engine's old
  // bit_width(ns)-1 histogram.
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe((uint64_t{1} << 39) - 1);
  h.observe(uint64_t{1} << 39);
  h.observe(~uint64_t{0});
  EXPECT_EQ(h.bucket_value(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket_value(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket_value(2), 1u);  // 4
  EXPECT_EQ(h.bucket_value(38), 1u);
  EXPECT_EQ(h.bucket_value(39), 2u);  // overflow
}

TEST(Histogram, LinearBounds) {
  std::vector<uint64_t> b = obs::Registry::linear_bounds(10, 3);
  EXPECT_EQ(b, (std::vector<uint64_t>{10, 20, 30}));
}

TEST(Registry, ConcurrentHammerLosesNothing) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kOps = 20000;
  obs::Counter shared = reg.counter("hammer_total");
  obs::Histogram hist = reg.histogram("hammer_ns", {10, 100, 1000});
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Half the threads re-acquire their handles mid-flight, racing the
      // interning path against recording and snapshotting.
      obs::Counter mine = reg.counter("hammer_total");
      obs::Histogram h = reg.histogram("hammer_ns", {10, 100, 1000});
      for (uint64_t i = 0; i < kOps; ++i) {
        mine.inc();
        h.observe(i % 2000);
        if (t % 2 == 0 && i % 4096 == 0) {
          mine = reg.counter("hammer_total");
        }
      }
    });
  }
  // Snapshot concurrently with the writers: must never tear or crash.
  for (int i = 0; i < 50; ++i) {
    (void)reg.snapshot();
    (void)obs::render_prometheus(reg);
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(shared.value(), kThreads * kOps);
  uint64_t total = 0;
  for (size_t i = 0; i < hist.bucket_count(); ++i) {
    total += hist.bucket_value(i);
  }
  EXPECT_EQ(total, kThreads * kOps);
}

TEST(Prometheus, GoldenPage) {
  obs::Registry reg;
  reg.counter("acme_requests_total", {}, "Requests served").inc(3);
  reg.counter("acme_parsed", {{"feed", "drop"}}).inc(9);
  reg.counter("acme_parsed", {{"feed", "irr"}}).inc(1);
  reg.gauge("acme_depth", {}, "Queue depth").set(-2);
  obs::Histogram h = reg.histogram("acme_lat", {1, 10}, {}, "Latency");
  h.observe(0);
  h.observe(5);
  h.observe(7);
  h.observe(100);
  const char* expected =
      "# HELP acme_depth Queue depth\n"
      "# TYPE acme_depth gauge\n"
      "acme_depth -2\n"
      "# HELP acme_lat Latency\n"
      "# TYPE acme_lat histogram\n"
      "acme_lat_bucket{le=\"1\"} 1\n"
      "acme_lat_bucket{le=\"10\"} 3\n"
      "acme_lat_bucket{le=\"+Inf\"} 4\n"
      "acme_lat_sum 112\n"
      "acme_lat_count 4\n"
      "# TYPE acme_parsed counter\n"
      "acme_parsed{feed=\"drop\"} 9\n"
      "acme_parsed{feed=\"irr\"} 1\n"
      "# HELP acme_requests_total Requests served\n"
      "# TYPE acme_requests_total counter\n"
      "acme_requests_total 3\n";
  EXPECT_EQ(obs::render_prometheus(reg), expected);
}

TEST(Prometheus, EscapesLabelValuesAndHelp) {
  obs::Registry reg;
  reg.counter("esc_total", {{"path", "a\\b\"c\nd"}}, "line\none").inc();
  std::string page = obs::render_prometheus(reg);
  EXPECT_NE(page.find("# HELP esc_total line\\none\n"), std::string::npos);
  EXPECT_NE(page.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Trace, SpansNestAndRootsSubmit) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer scoped(tracer);
    obs::Span root("outer");
    {
      obs::Span child("inner");
      obs::Span grandchild("leaf");
    }
    obs::Span sibling("inner2");
  }
  std::vector<obs::Tracer::Record> traces = tracer.recent();
  ASSERT_EQ(traces.size(), 1u);
  const obs::Tracer::Record& root = traces[0];
  EXPECT_EQ(root.name, "outer");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "inner");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "leaf");
  EXPECT_EQ(root.children[1].name, "inner2");
  EXPECT_GE(root.wall_ns, root.children[0].wall_ns);
  std::ostringstream dump;
  tracer.render(dump);
  EXPECT_NE(dump.str().find("outer"), std::string::npos);
  EXPECT_NE(dump.str().find("  inner"), std::string::npos);
}

TEST(Trace, RingIsBoundedAndCountsAllSubmissions) {
  obs::Tracer tracer(4);
  {
    obs::ScopedTracer scoped(tracer);
    for (int i = 0; i < 10; ++i) {
      obs::Span span("root");
    }
  }
  EXPECT_EQ(tracer.recent().size(), 4u);
  EXPECT_EQ(tracer.submitted(), 10u);
}

TEST(Trace, NoTracerMeansNoOp) {
  ASSERT_EQ(obs::installed_tracer(), nullptr);
  obs::Span span("unobserved");  // must not crash or allocate a record
}

TEST(DataQuality, ExportsGauges) {
  obs::Registry reg;
  core::DataQuality quality;
  util::ParseReport report("x.feed");
  report.add_parsed(2);
  report.add_error(1, "bad");
  quality.note_input(core::Feed::kDropFeed, report);
  quality.mark_day_unavailable(core::Feed::kRoas, net::Date(100));
  quality.export_metrics(reg, 30);
  EXPECT_EQ(reg.gauge("droplens_feed_days_total").value(), 30);
  EXPECT_EQ(
      reg.gauge("droplens_feed_days_degraded", {{"feed", "roas"}}).value(), 1);
  EXPECT_EQ(
      reg.gauge("droplens_feed_records_parsed_total", {{"feed", "drop"}})
          .value(),
      2);
  EXPECT_EQ(
      reg.gauge("droplens_feed_records_skipped_total", {{"feed", "drop"}})
          .value(),
      1);
  // Re-export refreshes rather than accumulates.
  quality.export_metrics(reg, 30);
  EXPECT_EQ(
      reg.gauge("droplens_feed_records_parsed_total", {{"feed", "drop"}})
          .value(),
      2);
}

TEST(ThreadPool, InstrumentsSubmissionAndCompletion) {
  obs::Registry reg;
  obs::ScopedRegistry scoped(reg);
  {
    util::ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    for (auto& f : futures) (void)f.get();
  }
  EXPECT_EQ(reg.counter("droplens_pool_tasks_submitted_total").value(), 20u);
  EXPECT_EQ(reg.counter("droplens_pool_tasks_completed_total").value(), 20u);
  EXPECT_EQ(reg.gauge("droplens_pool_queue_depth").value(), 0);
  obs::Histogram lat = reg.histogram("droplens_pool_task_latency_ns",
                                     obs::Registry::log2_bounds(39));
  uint64_t observed = 0;
  for (size_t i = 0; i < lat.bucket_count(); ++i) {
    observed += lat.bucket_value(i);
  }
  EXPECT_EQ(observed, 20u);
}

TEST(Service, MetricsOpServesPrometheusPage) {
  svc::Server server;  // no installed registry: server falls back to its own
  svc::LoopbackConnection conn(server);
  std::string reply = conn.roundtrip(svc::encode_metrics_request());
  svc::FrameHeader header = svc::decode_header(reply);
  ASSERT_EQ(header.type, svc::FrameType::kMetricsResponse);
  std::string page = svc::decode_metrics_response(svc::frame_payload(reply));
  EXPECT_NE(page.find("# TYPE droplens_svc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("droplens_svc_request_latency_ns_bucket"),
            std::string::npos);
  // The metrics frame itself was counted before the page rendered.
  EXPECT_NE(page.find("droplens_svc_requests_total 1"), std::string::npos);
}

TEST(Service, StatsOpStaysWireCompatibleWithRegistryBackend) {
  svc::Server server;
  svc::LoopbackConnection conn(server);
  // A malformed frame and a metrics request, then read the counters back
  // through the unchanged stats wire format.
  (void)conn.roundtrip(svc::encode_metrics_request());
  std::string reply = conn.roundtrip(svc::encode_stats_request());
  ASSERT_EQ(svc::decode_header(reply).type, svc::FrameType::kStatsResponse);
  svc::ServerStats stats =
      svc::decode_stats_response(svc::frame_payload(reply));
  EXPECT_EQ(stats.requests, 2u);  // metrics + this stats frame
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(stats.latency_ns_buckets.size(), 40u);
  uint64_t frames_timed = 0;
  for (uint64_t b : stats.latency_ns_buckets) frames_timed += b;
  EXPECT_EQ(frames_timed, 1u);  // the metrics frame (this one is in flight)
  // The contract is monotonic, not mutually synchronized: a fresh read sees
  // at least what the wire reported (the stats frame itself has since been
  // timed, so the latency total may be ahead).
  svc::ServerStats now = server.stats();
  EXPECT_GE(now.requests, stats.requests);
  EXPECT_EQ(now.queries, stats.queries);
  EXPECT_EQ(now.malformed, stats.malformed);
}

TEST(Service, ServerPrefersInstalledRegistry) {
  obs::Registry reg;
  obs::ScopedRegistry scoped(reg);
  svc::Server server;
  EXPECT_EQ(&server.metrics_registry(), &reg);
  svc::LoopbackConnection conn(server);
  (void)conn.roundtrip(svc::encode_stats_request());
  EXPECT_EQ(reg.counter("droplens_svc_requests_total").value(), 1u);
}

// The cornerstone contract: observability never changes analysis output.
// The same study renders byte-identically with no registry/tracer, and with
// both installed — across thread counts.
TEST(Determinism, ReportUnchangedByInstrumentation) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  core::ReportOptions options;
  options.threads = 1;

  std::ostringstream plain;
  core::write_report(plain, study, options);

  std::ostringstream observed;
  {
    obs::Registry reg;
    obs::Tracer tracer;
    obs::ScopedRegistry sr(reg);
    obs::ScopedTracer st(tracer);
    core::write_report(observed, study, options);
    EXPECT_GT(tracer.submitted(), 0u);
  }
  EXPECT_EQ(plain.str(), observed.str());

  std::ostringstream threaded;
  {
    obs::Registry reg;
    obs::ScopedRegistry sr(reg);
    core::ReportOptions parallel_options;
    parallel_options.threads = 4;
    core::write_report(threaded, study, parallel_options);
  }
  EXPECT_EQ(plain.str(), threaded.str());
}

}  // namespace
}  // namespace droplens
