// The observability layer: registry interning and handle semantics, the
// no-op mode, histogram bucket mapping, the Prometheus renderer (golden
// output), span nesting, the concurrent-hammer race (this binary's TSan
// gate), the svc metrics op, and the cornerstone determinism contract:
// instrumentation never changes what the pipeline computes.
//
// The request-lifecycle layer rides in the same binary: SpanContext
// cross-thread handoff (a second TSan gate), flight-recorder ring bounds
// and eviction, exemplar rendering, the structured logger's goldens and
// rate limiter, and the admin plane over real TCP — including the
// acceptance pins: one epoll request = one accept→read→serve→flush root
// trace on /tracez, a delayed query captured on /slowz with its stage
// breakdown, and /healthz flipping to 503 when the store is emptied.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "core/report.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "sim/generator.hpp"
#include "svc/admin_http.hpp"
#include "svc/epoll_transport.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "svc/transport.hpp"
#include "util/parse_report.hpp"
#include "util/thread_pool.hpp"

namespace droplens {
namespace {

TEST(Registry, HandlesShareCellsAndReacquisitionIsIdempotent) {
  obs::Registry reg;
  obs::Counter a = reg.counter("requests_total", {}, "help");
  obs::Counter b = reg.counter("requests_total");
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_TRUE(static_cast<bool>(a));
}

TEST(Registry, LabelsDistinguishSeries) {
  obs::Registry reg;
  obs::Counter drop = reg.counter("parsed", {{"feed", "drop"}});
  obs::Counter irr = reg.counter("parsed", {{"feed", "irr"}});
  drop.inc(7);
  irr.inc(2);
  EXPECT_EQ(drop.value(), 7u);
  EXPECT_EQ(irr.value(), 2u);
}

TEST(Registry, TypeAndBoundsMismatchesThrow) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1, 2}), std::logic_error);
  reg.histogram("h", {1, 2, 3});
  EXPECT_THROW(reg.histogram("h", {1, 2}), std::logic_error);
  EXPECT_NO_THROW(reg.histogram("h", {1, 2, 3}));
}

TEST(Registry, GaugeSetAddSub) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("depth");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
}

TEST(Registry, NoOpHandlesCostNothingAndReadZero) {
  // Nothing installed: ambient acquisition yields inert handles.
  ASSERT_EQ(obs::installed(), nullptr);
  obs::Counter c = obs::counter("ghost_total");
  obs::Gauge g = obs::gauge("ghost_depth");
  obs::Histogram h = obs::histogram("ghost_ns", obs::Registry::log2_bounds(4));
  c.inc();
  g.set(42);
  h.observe(100);
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_count(), 0u);
}

TEST(Registry, ScopedInstallRestoresPrevious) {
  obs::Registry outer;
  {
    obs::ScopedRegistry a(outer);
    EXPECT_EQ(obs::installed(), &outer);
    obs::Registry inner;
    {
      obs::ScopedRegistry b(inner);
      EXPECT_EQ(obs::installed(), &inner);
    }
    EXPECT_EQ(obs::installed(), &outer);
  }
  EXPECT_EQ(obs::installed(), nullptr);
}

TEST(Histogram, Log2BucketMappingMatchesBitWidth) {
  obs::Registry reg;
  obs::Histogram h =
      reg.histogram("lat", obs::Registry::log2_bounds(39));  // 40 buckets
  ASSERT_EQ(h.bucket_count(), 40u);
  // Bucket i counts values in [2^i, 2^(i+1)); 0 lands in bucket 0; values
  // at or past 2^39 land in the overflow bucket — exactly the engine's old
  // bit_width(ns)-1 histogram.
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe((uint64_t{1} << 39) - 1);
  h.observe(uint64_t{1} << 39);
  h.observe(~uint64_t{0});
  EXPECT_EQ(h.bucket_value(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket_value(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket_value(2), 1u);  // 4
  EXPECT_EQ(h.bucket_value(38), 1u);
  EXPECT_EQ(h.bucket_value(39), 2u);  // overflow
}

TEST(Histogram, LinearBounds) {
  std::vector<uint64_t> b = obs::Registry::linear_bounds(10, 3);
  EXPECT_EQ(b, (std::vector<uint64_t>{10, 20, 30}));
}

TEST(Registry, ConcurrentHammerLosesNothing) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kOps = 20000;
  obs::Counter shared = reg.counter("hammer_total");
  obs::Histogram hist = reg.histogram("hammer_ns", {10, 100, 1000});
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Half the threads re-acquire their handles mid-flight, racing the
      // interning path against recording and snapshotting.
      obs::Counter mine = reg.counter("hammer_total");
      obs::Histogram h = reg.histogram("hammer_ns", {10, 100, 1000});
      for (uint64_t i = 0; i < kOps; ++i) {
        mine.inc();
        h.observe(i % 2000);
        if (t % 2 == 0 && i % 4096 == 0) {
          mine = reg.counter("hammer_total");
        }
      }
    });
  }
  // Snapshot concurrently with the writers: must never tear or crash.
  for (int i = 0; i < 50; ++i) {
    (void)reg.snapshot();
    (void)obs::render_prometheus(reg);
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(shared.value(), kThreads * kOps);
  uint64_t total = 0;
  for (size_t i = 0; i < hist.bucket_count(); ++i) {
    total += hist.bucket_value(i);
  }
  EXPECT_EQ(total, kThreads * kOps);
}

TEST(Prometheus, GoldenPage) {
  obs::Registry reg;
  reg.counter("acme_requests_total", {}, "Requests served").inc(3);
  reg.counter("acme_parsed", {{"feed", "drop"}}).inc(9);
  reg.counter("acme_parsed", {{"feed", "irr"}}).inc(1);
  reg.gauge("acme_depth", {}, "Queue depth").set(-2);
  obs::Histogram h = reg.histogram("acme_lat", {1, 10}, {}, "Latency");
  h.observe(0);
  h.observe(5);
  h.observe(7);
  h.observe(100);
  const char* expected =
      "# HELP acme_depth Queue depth\n"
      "# TYPE acme_depth gauge\n"
      "acme_depth -2\n"
      "# HELP acme_lat Latency\n"
      "# TYPE acme_lat histogram\n"
      "acme_lat_bucket{le=\"1\"} 1\n"
      "acme_lat_bucket{le=\"10\"} 3\n"
      "acme_lat_bucket{le=\"+Inf\"} 4\n"
      "acme_lat_sum 112\n"
      "acme_lat_count 4\n"
      "# TYPE acme_parsed counter\n"
      "acme_parsed{feed=\"drop\"} 9\n"
      "acme_parsed{feed=\"irr\"} 1\n"
      "# HELP acme_requests_total Requests served\n"
      "# TYPE acme_requests_total counter\n"
      "acme_requests_total 3\n";
  EXPECT_EQ(obs::render_prometheus(reg), expected);
}

TEST(Prometheus, EscapesLabelValuesAndHelp) {
  obs::Registry reg;
  reg.counter("esc_total", {{"path", "a\\b\"c\nd"}}, "line\none").inc();
  std::string page = obs::render_prometheus(reg);
  EXPECT_NE(page.find("# HELP esc_total line\\none\n"), std::string::npos);
  EXPECT_NE(page.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Trace, SpansNestAndRootsSubmit) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer scoped(tracer);
    obs::Span root("outer");
    {
      obs::Span child("inner");
      obs::Span grandchild("leaf");
    }
    obs::Span sibling("inner2");
  }
  std::vector<obs::Tracer::Record> traces = tracer.recent();
  ASSERT_EQ(traces.size(), 1u);
  const obs::Tracer::Record& root = traces[0];
  EXPECT_EQ(root.name, "outer");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "inner");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "leaf");
  EXPECT_EQ(root.children[1].name, "inner2");
  EXPECT_GE(root.wall_ns, root.children[0].wall_ns);
  std::ostringstream dump;
  tracer.render(dump);
  EXPECT_NE(dump.str().find("outer"), std::string::npos);
  EXPECT_NE(dump.str().find("  inner"), std::string::npos);
}

TEST(Trace, RingIsBoundedAndCountsAllSubmissions) {
  obs::Tracer tracer(4);
  {
    obs::ScopedTracer scoped(tracer);
    for (int i = 0; i < 10; ++i) {
      obs::Span span("root");
    }
  }
  EXPECT_EQ(tracer.recent().size(), 4u);
  EXPECT_EQ(tracer.submitted(), 10u);
}

TEST(Trace, NoTracerMeansNoOp) {
  ASSERT_EQ(obs::installed_tracer(), nullptr);
  obs::Span span("unobserved");  // must not crash or allocate a record
}

TEST(DataQuality, ExportsGauges) {
  obs::Registry reg;
  core::DataQuality quality;
  util::ParseReport report("x.feed");
  report.add_parsed(2);
  report.add_error(1, "bad");
  quality.note_input(core::Feed::kDropFeed, report);
  quality.mark_day_unavailable(core::Feed::kRoas, net::Date(100));
  quality.export_metrics(reg, 30);
  EXPECT_EQ(reg.gauge("droplens_feed_days_total").value(), 30);
  EXPECT_EQ(
      reg.gauge("droplens_feed_days_degraded", {{"feed", "roas"}}).value(), 1);
  EXPECT_EQ(
      reg.gauge("droplens_feed_records_parsed_total", {{"feed", "drop"}})
          .value(),
      2);
  EXPECT_EQ(
      reg.gauge("droplens_feed_records_skipped_total", {{"feed", "drop"}})
          .value(),
      1);
  // Re-export refreshes rather than accumulates.
  quality.export_metrics(reg, 30);
  EXPECT_EQ(
      reg.gauge("droplens_feed_records_parsed_total", {{"feed", "drop"}})
          .value(),
      2);
}

TEST(ThreadPool, InstrumentsSubmissionAndCompletion) {
  obs::Registry reg;
  obs::ScopedRegistry scoped(reg);
  {
    util::ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    for (auto& f : futures) (void)f.get();
  }
  EXPECT_EQ(reg.counter("droplens_pool_tasks_submitted_total").value(), 20u);
  EXPECT_EQ(reg.counter("droplens_pool_tasks_completed_total").value(), 20u);
  EXPECT_EQ(reg.gauge("droplens_pool_queue_depth").value(), 0);
  obs::Histogram lat = reg.histogram("droplens_pool_task_latency_ns",
                                     obs::Registry::log2_bounds(39));
  uint64_t observed = 0;
  for (size_t i = 0; i < lat.bucket_count(); ++i) {
    observed += lat.bucket_value(i);
  }
  EXPECT_EQ(observed, 20u);
}

TEST(Service, MetricsOpServesPrometheusPage) {
  svc::Server server;  // no installed registry: server falls back to its own
  svc::LoopbackConnection conn(server);
  std::string reply = conn.roundtrip(svc::encode_metrics_request());
  svc::FrameHeader header = svc::decode_header(reply);
  ASSERT_EQ(header.type, svc::FrameType::kMetricsResponse);
  std::string page = svc::decode_metrics_response(svc::frame_payload(reply));
  EXPECT_NE(page.find("# TYPE droplens_svc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("droplens_svc_request_latency_ns_bucket"),
            std::string::npos);
  // The metrics frame itself was counted before the page rendered.
  EXPECT_NE(page.find("droplens_svc_requests_total 1"), std::string::npos);
}

TEST(Service, StatsOpStaysWireCompatibleWithRegistryBackend) {
  svc::Server server;
  svc::LoopbackConnection conn(server);
  // A malformed frame and a metrics request, then read the counters back
  // through the unchanged stats wire format.
  (void)conn.roundtrip(svc::encode_metrics_request());
  std::string reply = conn.roundtrip(svc::encode_stats_request());
  ASSERT_EQ(svc::decode_header(reply).type, svc::FrameType::kStatsResponse);
  svc::ServerStats stats =
      svc::decode_stats_response(svc::frame_payload(reply));
  EXPECT_EQ(stats.requests, 2u);  // metrics + this stats frame
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(stats.latency_ns_buckets.size(), 40u);
  uint64_t frames_timed = 0;
  for (uint64_t b : stats.latency_ns_buckets) frames_timed += b;
  EXPECT_EQ(frames_timed, 1u);  // the metrics frame (this one is in flight)
  // The contract is monotonic, not mutually synchronized: a fresh read sees
  // at least what the wire reported (the stats frame itself has since been
  // timed, so the latency total may be ahead).
  svc::ServerStats now = server.stats();
  EXPECT_GE(now.requests, stats.requests);
  EXPECT_EQ(now.queries, stats.queries);
  EXPECT_EQ(now.malformed, stats.malformed);
}

TEST(Service, ServerPrefersInstalledRegistry) {
  obs::Registry reg;
  obs::ScopedRegistry scoped(reg);
  svc::Server server;
  EXPECT_EQ(&server.metrics_registry(), &reg);
  svc::LoopbackConnection conn(server);
  (void)conn.roundtrip(svc::encode_stats_request());
  EXPECT_EQ(reg.counter("droplens_svc_requests_total").value(), 1u);
}

// The cornerstone contract: observability never changes analysis output.
// The same study renders byte-identically with no registry/tracer, and with
// both installed — across thread counts.
TEST(Determinism, ReportUnchangedByInstrumentation) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  core::ReportOptions options;
  options.threads = 1;

  std::ostringstream plain;
  core::write_report(plain, study, options);

  std::ostringstream observed;
  {
    obs::Registry reg;
    obs::Tracer tracer;
    obs::ScopedRegistry sr(reg);
    obs::ScopedTracer st(tracer);
    core::write_report(observed, study, options);
    EXPECT_GT(tracer.submitted(), 0u);
  }
  EXPECT_EQ(plain.str(), observed.str());

  std::ostringstream threaded;
  {
    obs::Registry reg;
    obs::ScopedRegistry sr(reg);
    core::ReportOptions parallel_options;
    parallel_options.threads = 4;
    core::write_report(threaded, study, parallel_options);
  }
  EXPECT_EQ(plain.str(), threaded.str());
}

// ---------------------------------------------------------------------------
// SpanContext + FlightRecorder: the request-lifecycle layer.

TEST(FlightRecorder, InertContextsCostNothingAndRecordNothing) {
  obs::SpanContext inert;
  EXPECT_FALSE(static_cast<bool>(inert));
  inert.stage("decode");  // all no-ops
  inert.stage_end();
  inert.finish("ok");

  // No recorder installed: begin() through a TraceBinding is inert too.
  ASSERT_EQ(obs::installed_flight_recorder(), nullptr);
  svc::TraceBinding unbound("binary");
  EXPECT_FALSE(static_cast<bool>(unbound));
  obs::SpanContext ctx = unbound.begin();
  EXPECT_FALSE(static_cast<bool>(ctx));
}

TEST(FlightRecorder, CapturesStagesOutcomeAndOrder) {
  obs::FlightRecorder::Options opt;
  opt.sample_period = 1;  // every request into the recent ring
  obs::FlightRecorder rec(opt);
  const uint16_t op = rec.op_class("binary");

  obs::SpanContext ctx = rec.begin(op);
  ASSERT_TRUE(static_cast<bool>(ctx));
  EXPECT_TRUE(ctx.sampled());
  ctx.stage("accept");
  ctx.stage("read");
  ctx.stage("serve");
  ctx.stage("flush");
  ctx.finish("ok");
  EXPECT_FALSE(static_cast<bool>(ctx)) << "a finished context is inert";

  ASSERT_EQ(rec.finished(), 1u);
  std::vector<obs::RequestTrace> recent = rec.recent("binary");
  ASSERT_EQ(recent.size(), 1u);
  const obs::RequestTrace& t = recent[0];
  EXPECT_EQ(t.op, "binary");
  EXPECT_EQ(t.outcome, "ok");
  EXPECT_GT(t.id, 0u);
  ASSERT_EQ(t.stages.size(), 4u);
  EXPECT_STREQ(t.stages[0].name, "accept");
  EXPECT_STREQ(t.stages[1].name, "read");
  EXPECT_STREQ(t.stages[2].name, "serve");
  EXPECT_STREQ(t.stages[3].name, "flush");
  // Stages are sequential: each opens at or after the previous one.
  for (size_t i = 1; i < t.stages.size(); ++i) {
    EXPECT_GE(t.stages[i].start_ns, t.stages[i - 1].start_ns);
  }
  EXPECT_NE(rec.render_tracez().find("op=binary"), std::string::npos);
}

TEST(FlightRecorder, RingsAreBoundedAndSlowRingKeepsTheSlowest) {
  obs::FlightRecorder::Options opt;
  opt.sample_period = 1;
  opt.recent_capacity = 4;
  opt.slow_capacity = 2;
  obs::FlightRecorder rec(opt);
  const uint16_t op = rec.op_class("binary");

  // Two genuinely slow requests among a crowd of fast ones: the slow ring
  // must keep exactly those two, whatever the sampler does.
  for (int i = 0; i < 12; ++i) {
    obs::SpanContext ctx = rec.begin(op);
    ctx.stage("serve");
    if (i == 3 || i == 7) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ctx.finish("ok");
  }
  EXPECT_EQ(rec.finished(), 12u);
  EXPECT_EQ(rec.recent("binary").size(), 4u) << "recent ring must be bounded";

  std::vector<obs::RequestTrace> slow = rec.slowest("binary");
  ASSERT_EQ(slow.size(), 2u) << "slow ring must be bounded";
  EXPECT_GE(slow[0].total_ns, slow[1].total_ns) << "slowest-first order";
  EXPECT_GE(slow[1].total_ns, 10'000'000u)
      << "the delayed requests must have evicted the fast ones";
}

TEST(FlightRecorder, StageOverflowIsCountedNotRecorded) {
  obs::Registry reg;
  obs::ScopedRegistry sr(reg);
  obs::FlightRecorder::Options opt;
  opt.sample_period = 1;
  obs::FlightRecorder rec(opt);
  const uint16_t op = rec.op_class("binary");
  obs::SpanContext ctx = rec.begin(op);
  for (size_t i = 0; i < obs::SpanContext::kMaxStages + 3; ++i) {
    ctx.stage("s");
  }
  ctx.finish("ok");
  std::vector<obs::RequestTrace> recent = rec.recent("binary");
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].stages.size(), obs::SpanContext::kMaxStages);
}

TEST(FlightRecorder, AbandonedContextSubmitsItself) {
  obs::FlightRecorder::Options opt;
  opt.sample_period = 1;
  obs::FlightRecorder rec(opt);
  const uint16_t op = rec.op_class("whois");
  {
    obs::SpanContext ctx = rec.begin(op);
    ctx.stage("read");
    // dropped without finish(): a closed connection mid-request
  }
  std::vector<obs::RequestTrace> recent = rec.recent("whois");
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].outcome, "abandoned");
}

// The TSan gate for the explicit-context model: contexts begin on one
// thread, hop to workers (the epoll callback / ThreadPool shape), gain
// stages there, and finish — all racing against readers of the rings.
TEST(FlightRecorder, CrossThreadHandoffRace) {
  obs::FlightRecorder::Options opt;
  opt.sample_period = 2;
  opt.recent_capacity = 8;
  opt.slow_capacity = 4;
  obs::FlightRecorder rec(opt);
  const uint16_t op = rec.op_class("xthread");

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&rec, op] {
      for (int i = 0; i < kPerProducer; ++i) {
        obs::SpanContext ctx = rec.begin(op);
        ctx.stage("read");
        // The handoff under test: move the armed context into another
        // thread, exactly like parking it on a connection object.
        std::thread worker([moved = std::move(ctx)]() mutable {
          moved.stage("serve");
          moved.finish("ok");
        });
        worker.join();
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&rec, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)rec.recent("xthread");
      (void)rec.render_slowz();
    }
  });
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(rec.finished(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_LE(rec.recent("xthread").size(), 8u);
}

TEST(FlightRecorder, ExemplarsAttachToDurationBuckets) {
  obs::Registry reg;
  obs::ScopedRegistry sr(reg);
  obs::FlightRecorder::Options opt;
  opt.sample_period = 1;
  obs::FlightRecorder rec(opt);
  const uint16_t op = rec.op_class("binary");
  obs::SpanContext ctx = rec.begin(op);
  ctx.stage("serve");
  ctx.finish("ok");

  std::vector<obs::RequestTrace> recent = rec.recent("binary");
  ASSERT_EQ(recent.size(), 1u);
  const uint64_t id = recent[0].id;

  // The exemplar renders OpenMetrics-style on the owning bucket line:
  //   ..._bucket{op="binary",le="..."} 1 # {trace_id="N"} VALUE TS
  std::string page = obs::render_prometheus(reg, &rec);
  const std::string needle = " # {trace_id=\"" + std::to_string(id) + "\"} ";
  size_t at = page.find(needle);
  ASSERT_NE(at, std::string::npos) << page;
  size_t line_start = page.rfind('\n', at);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  std::string line = page.substr(line_start, page.find('\n', at) - line_start);
  EXPECT_NE(line.find("droplens_request_duration_ns_bucket"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("op=\"binary\""), std::string::npos) << line;
  // Without the source, the same registry renders a plain page.
  EXPECT_EQ(obs::render_prometheus(reg).find("trace_id"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured logger.

namespace logtest {

struct Capture {
  obs::Logger* logger;
  std::vector<std::string> lines;
  explicit Capture(obs::Logger& l, uint64_t fixed_ns) : logger(&l) {
    l.set_clock([fixed_ns] { return fixed_ns; });
    l.set_sink([this](std::string_view line) {
      lines.emplace_back(line);
    });
  }
};

}  // namespace logtest

TEST(Log, LogfmtGolden) {
  obs::Logger::Options opt;
  opt.level = obs::LogLevel::kDebug;
  obs::Logger logger(opt);
  // 123.456s after the epoch: a fully pinned timestamp.
  logtest::Capture cap(logger, 123'456'000'000ull);
  static obs::LogSite site{"src/example/daemon.cpp", 42};
  logger.log(obs::LogLevel::kInfo, site, "bind failed",
             {{"port", "8053"}, {"reason", "address in use"}});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0],
            "ts=1970-01-01T00:02:03.456Z level=info site=daemon.cpp:42 "
            "msg=\"bind failed\" port=8053 reason=\"address in use\"");
}

TEST(Log, JsonGoldenEscapesHostileValues) {
  obs::Logger::Options opt;
  opt.level = obs::LogLevel::kDebug;
  opt.format = obs::LogFormat::kJson;
  obs::Logger logger(opt);
  logtest::Capture cap(logger, 123'456'000'000ull);
  static obs::LogSite site{"daemon.cpp", 7};
  logger.log(obs::LogLevel::kWarn, site, "weird \"input\"\nline",
             {{"key", std::string("a\tb\x01") + "c"}});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0],
            "{\"ts\":\"1970-01-01T00:02:03.456Z\",\"level\":\"warn\","
            "\"site\":\"daemon.cpp:7\",\"msg\":\"weird \\\"input\\\"\\nline\","
            "\"key\":\"a\\tb\\u0001c\"}");
}

TEST(Log, LevelGateAndParsers) {
  obs::Logger::Options opt;
  opt.level = obs::LogLevel::kWarn;
  obs::Logger logger(opt);
  logtest::Capture cap(logger, 1);
  static obs::LogSite site{"f.cpp", 1};
  logger.log(obs::LogLevel::kInfo, site, "below the gate");
  logger.log(obs::LogLevel::kError, site, "above the gate");
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("above the gate"), std::string::npos);
  logger.set_level(obs::LogLevel::kDebug);
  logger.log(obs::LogLevel::kDebug, site, "now visible");
  EXPECT_EQ(cap.lines.size(), 2u);

  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("warning"), obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::parse_log_level("loud").has_value());
  EXPECT_EQ(obs::parse_log_format("json"), obs::LogFormat::kJson);
  EXPECT_FALSE(obs::parse_log_format("xml").has_value());
}

TEST(Log, RateLimiterSuppressesAndAnnotates) {
  obs::Logger::Options opt;
  opt.level = obs::LogLevel::kDebug;
  opt.site_interval_ns = 1'000'000'000;  // 1/s after the burst
  opt.site_burst = 2;
  obs::Logger logger(opt);
  uint64_t now = 1'000'000'000ull;
  logger.set_clock([&now] { return now; });
  std::vector<std::string> lines;
  logger.set_sink([&lines](std::string_view l) { lines.emplace_back(l); });

  static obs::LogSite site{"hot.cpp", 9};
  for (int i = 0; i < 10; ++i) {
    logger.log(obs::LogLevel::kError, site, "hot path");
  }
  // GCRA with burst b admits b+1 at one instant, then throttles.
  EXPECT_EQ(lines.size(), 3u);
  EXPECT_EQ(logger.suppressed(), 7u);

  // Advance past the backlog: the next admitted record carries the count.
  now += 20'000'000'000ull;
  logger.log(obs::LogLevel::kError, site, "hot path");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines.back().find("suppressed=7"), std::string::npos)
      << lines.back();
}

TEST(Log, LogzRingIsBoundedAndOldestFirst) {
  obs::Logger::Options opt;
  opt.level = obs::LogLevel::kDebug;
  opt.ring_capacity = 3;
  opt.site_interval_ns = 0;  // no limiting; exercise the ring alone
  obs::Logger logger(opt);
  logger.set_clock([] { return uint64_t{1}; });
  logger.set_sink([](std::string_view) {});
  static obs::LogSite site{"r.cpp", 1};
  for (int i = 0; i < 5; ++i) {
    logger.log(obs::LogLevel::kInfo, site, "record " + std::to_string(i));
  }
  std::string page = logger.render_logz();
  EXPECT_EQ(page.find("record 0"), std::string::npos) << "ring must evict";
  EXPECT_EQ(page.find("record 1"), std::string::npos);
  size_t r2 = page.find("record 2");
  size_t r4 = page.find("record 4");
  ASSERT_NE(r2, std::string::npos);
  ASSERT_NE(r4, std::string::npos);
  EXPECT_LT(r2, r4) << "oldest first";
  EXPECT_NE(page.find("emitted=5"), std::string::npos) << page;
}

// ---------------------------------------------------------------------------
// The admin plane.

namespace admintest {

/// Response framer: head plus its declared Content-Length body.
size_t http_framer(std::string_view b) {
  size_t head = b.find("\r\n\r\n");
  if (head == std::string_view::npos) return 0;
  head += 4;
  size_t cl = b.find("Content-Length: ");
  size_t body = 0;
  if (cl != std::string_view::npos && cl < head) {
    body = static_cast<size_t>(
        std::atoll(std::string(b.substr(cl + 16, 20)).c_str()));
  }
  return b.size() >= head + body ? head + body : 0;
}

std::string body_of(const std::string& response) {
  size_t head = response.find("\r\n\r\n");
  return head == std::string::npos ? std::string() : response.substr(head + 4);
}

}  // namespace admintest

TEST(AdminPlane, HeadMatchesGetHeadersAndCarriesNoBody) {
  obs::Registry reg;
  reg.counter("droplens_admin_test_total", {}, "help").inc();
  svc::AdminHttpService admin(reg);

  std::string get = admin.serve("GET /metrics HTTP/1.1\r\n\r\n");
  std::string head = admin.serve("HEAD /metrics HTTP/1.1\r\n\r\n");
  const std::string get_body = admintest::body_of(get);
  EXPECT_FALSE(get_body.empty());
  EXPECT_TRUE(admintest::body_of(head).empty()) << "HEAD must carry no body";
  // Identical headers, including the Content-Length the GET body would have.
  EXPECT_EQ(get.substr(0, get.find("\r\n\r\n")),
            head.substr(0, head.find("\r\n\r\n")));
  EXPECT_NE(head.find("Content-Length: " + std::to_string(get_body.size())),
            std::string::npos);
}

TEST(AdminPlane, NonGetHeadGets405WithAllow) {
  obs::Registry reg;
  svc::AdminHttpService admin(reg);
  for (const char* method : {"POST", "PUT", "DELETE", "PATCH"}) {
    std::string r = admin.serve(std::string(method) +
                                " /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(r.find("405 Method Not Allowed"), std::string::npos) << method;
    EXPECT_NE(r.find("Allow: GET, HEAD"), std::string::npos) << method;
    EXPECT_NE(r.find("Content-Length: "), std::string::npos) << method;
  }
}

TEST(AdminPlane, RoutesServeOverTcp) {
  obs::Registry reg;
  obs::ScopedRegistry sr(reg);
  obs::FlightRecorder::Options ropt;
  ropt.sample_period = 1;
  obs::FlightRecorder rec(ropt);
  obs::Logger logger;
  logger.set_sink([](std::string_view) {});

  // One captured trace and one log record so every page has content.
  const uint16_t op = rec.op_class("binary");
  obs::SpanContext ctx = rec.begin(op);
  ctx.stage("serve");
  ctx.finish("ok");
  static obs::LogSite site{"admin.cpp", 1};
  logger.log(obs::LogLevel::kInfo, site, "hello admin");

  svc::AdminHttpService::Options aopt;
  aopt.registry = &reg;
  aopt.exemplars = &rec;
  aopt.recorder = &rec;
  aopt.logger = &logger;
  aopt.build_info = "droplens-test build";
  svc::AdminHttpService admin(aopt);
  admin.add_status_section("extra", [] { return std::string("k v\n"); });

  svc::TcpServer tcp(admin, svc::TransportOptions{});
  svc::TcpClientConnection conn("127.0.0.1", tcp.port(),
                                admintest::http_framer);

  std::string metrics = conn.roundtrip("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("droplens_request_duration_ns_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.find("trace_id"), std::string::npos)
      << "exemplars must reach the wire";

  std::string statusz = conn.roundtrip("GET /statusz HTTP/1.1\r\n\r\n");
  EXPECT_NE(statusz.find("droplens-test build"), std::string::npos);
  EXPECT_NE(statusz.find("uptime_seconds "), std::string::npos);
  EXPECT_NE(statusz.find("open_fds "), std::string::npos);
  EXPECT_NE(statusz.find("== extra =="), std::string::npos);

  std::string tracez = conn.roundtrip("GET /tracez HTTP/1.1\r\n\r\n");
  EXPECT_NE(tracez.find("op=binary"), std::string::npos);
  std::string slowz = conn.roundtrip("GET /slowz HTTP/1.1\r\n\r\n");
  EXPECT_NE(slowz.find("op=binary"), std::string::npos);
  std::string logz = conn.roundtrip("GET /logz HTTP/1.1\r\n\r\n");
  EXPECT_NE(logz.find("hello admin"), std::string::npos);

  std::string index = conn.roundtrip("GET / HTTP/1.1\r\n\r\n");
  EXPECT_NE(index.find("/healthz"), std::string::npos);
  std::string missing = conn.roundtrip("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);
  // Query strings are routing-irrelevant.
  std::string q = conn.roundtrip("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(q.find("200 OK"), std::string::npos);
}

// The acceptance pin: /healthz answers 200 while the store serves, and
// flips to 503 — naming the failing check — once the store is emptied by
// damaging its backing files (sim::FaultInjector) and rescanning.
TEST(AdminPlane, HealthzFlipsTo503WhenStoreIsEmptied) {
  namespace fs = std::filesystem;
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  util::ThreadPool pool(2);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  study.pool = &pool;
  core::DropIndex index = core::DropIndex::build(study);

  fs::path dir = fs::temp_directory_path() / "droplens_admin_healthz";
  fs::remove_all(dir);
  fs::create_directories(dir);
  svc::SnapshotStore::Config sc;
  sc.dir = dir.string();
  svc::SnapshotStore store(sc, &study, &index);
  net::Date d = config.window_begin + 30;
  ASSERT_NE(store.get(d), nullptr);
  ASSERT_EQ(store.resident_count(), 1u);

  obs::Registry reg;
  svc::AdminHttpService::Options aopt;
  aopt.registry = &reg;
  svc::AdminHttpService admin(aopt);
  admin.add_health_check("store", [&store] {
    return store.resident_count() > 0
               ? std::nullopt
               : std::optional<std::string>("no resident days");
  });

  svc::TcpServer tcp(admin, svc::TransportOptions{});
  svc::TcpClientConnection conn("127.0.0.1", tcp.port(),
                                admintest::http_framer);
  std::string healthy = conn.roundtrip("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos);
  EXPECT_NE(admintest::body_of(healthy).find("ok"), std::string::npos);

  // Damage the backing file (deterministic corruption) and rescan: the
  // day's stamp no longer matches, residency drops to zero.
  sim::FaultInjector inj(7);
  std::string path = store.path_for(d);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::string damaged = inj.truncate(inj.flip_bits(bytes));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  out.close();
  store.rescan();
  ASSERT_EQ(store.resident_count(), 0u);

  std::string sick = conn.roundtrip("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(sick.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(admintest::body_of(sick).find("store: no resident days"),
            std::string::npos);
  fs::remove_all(dir);
}

// The acceptance pin: one request through the epoll transport produces one
// root trace spanning accept→read→serve→flush, visible on /tracez.
TEST(AdminPlane, EpollRequestProducesOneRootTrace) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  core::Study study{world->registry, world->fleet, world->irr,  world->roas,
                    world->drop,     world->sbl,   config.window_begin,
                    config.window_end};
  core::DropIndex index = core::DropIndex::build(study);
  net::Date d = config.window_begin + 30;

  obs::Registry reg;
  obs::ScopedRegistry sr(reg);
  obs::FlightRecorder::Options ropt;
  ropt.sample_period = 1;
  obs::FlightRecorder rec(ropt);
  obs::ScopedFlightRecorder srec(rec);

  svc::Server server(svc::compile_snapshot(study, index, d, 1));
  svc::TransportOptions o;
  o.name = "binary";
  svc::EpollServer epoll_srv(server, o);  // binding resolves the recorder

  svc::TcpClientConnection conn("127.0.0.1", epoll_srv.port(),
                                svc::frame_size);
  std::vector<svc::Query> batch{
      svc::Query{d, net::Prefix::parse("10.0.0.0/8"), svc::kAllFields}};
  std::string reply = conn.roundtrip(svc::encode_query_request(batch));
  ASSERT_FALSE(reply.empty());

  // The trace finishes when the flush drains — poll briefly for it.
  std::vector<obs::RequestTrace> recent;
  for (int spin = 0; spin < 200; ++spin) {
    recent = rec.recent("binary");
    if (!recent.empty() && recent.back().outcome == "ok") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(recent.size(), 1u) << "one request = one root trace";
  const obs::RequestTrace& t = recent[0];
  EXPECT_EQ(t.outcome, "ok");
  std::vector<std::string> names;
  for (const obs::RequestTrace::Stage& s : t.stages) names.push_back(s.name);
  auto has = [&names](const char* n) {
    for (const std::string& s : names) {
      if (s == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("accept")) << rec.render_tracez();
  EXPECT_TRUE(has("read")) << rec.render_tracez();
  EXPECT_TRUE(has("serve")) << rec.render_tracez();
  EXPECT_TRUE(has("flush")) << rec.render_tracez();
  // The Server's own marks ride in the same root trace.
  EXPECT_TRUE(has("decode")) << rec.render_tracez();
  EXPECT_TRUE(has("answer")) << rec.render_tracez();
  EXPECT_NE(rec.render_tracez().find("op=binary"), std::string::npos);
}

namespace admintest {

/// A service with a deliberate stall, for the /slowz acceptance pin.
class DelayedEchoService : public svc::Service {
 public:
  size_t message_size(std::string_view buffer) const override {
    size_t pos = buffer.find('\n');
    return pos == std::string_view::npos ? 0 : pos + 1;
  }
  std::string serve(std::string_view message) override {
    obs::SpanContext inert;
    return serve(message, inert);
  }
  std::string serve(std::string_view message,
                    obs::SpanContext& ctx) override {
    ctx.stage("stall");
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ctx.stage_end();
    return "echo:" + std::string(message);
  }
  std::string malformed_response(std::string_view) override {
    return "bad\n";
  }
};

}  // namespace admintest

// The acceptance pin: an artificially delayed query lands on /slowz with
// its per-stage breakdown.
TEST(AdminPlane, SlowzCapturesDelayedQueryWithStageBreakdown) {
  obs::Registry reg;
  obs::ScopedRegistry sr(reg);
  obs::FlightRecorder rec;  // default 1/1024 sampling: slowness still lands
  obs::ScopedFlightRecorder srec(rec);

  admintest::DelayedEchoService service;
  svc::TransportOptions o;
  o.name = "query";
  svc::EpollServer epoll_srv(service, o);
  svc::TcpClientConnection conn("127.0.0.1", epoll_srv.port(),
                                [](std::string_view b) {
                                  size_t pos = b.find('\n');
                                  return pos == std::string_view::npos
                                             ? size_t{0}
                                             : pos + 1;
                                });
  EXPECT_EQ(conn.roundtrip("slow one\n"), "echo:slow one\n");

  std::vector<obs::RequestTrace> slow;
  for (int spin = 0; spin < 200; ++spin) {
    slow = rec.slowest("query");
    if (!slow.empty() && slow[0].outcome == "ok") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(slow.empty())
      << "slowness is judged on every request, sampled or not";
  const obs::RequestTrace& t = slow[0];
  EXPECT_GE(t.total_ns, 25'000'000u);
  bool has_stall = false;
  for (const obs::RequestTrace::Stage& s : t.stages) {
    if (std::string_view(s.name) == "stall") {
      has_stall = true;
      EXPECT_GE(s.dur_ns, 20'000'000u) << "the stall dominates its stage";
    }
  }
  EXPECT_TRUE(has_stall) << rec.render_slowz();
  std::string page = rec.render_slowz();
  EXPECT_NE(page.find("op=query"), std::string::npos);
  EXPECT_NE(page.find("stall"), std::string::npos);
}

}  // namespace
}  // namespace droplens
