// Integration tests: the analysis pipeline must recover what the generator
// planted, using only the data sets (never the ground truth as input).
#include <gtest/gtest.h>

#include "core/as0_analysis.hpp"
#include "core/case_study.hpp"
#include "core/classification.hpp"
#include "core/drop_index.hpp"
#include "core/irr_analysis.hpp"
#include "core/roa_status.hpp"
#include "core/rpki_uptake.hpp"
#include "core/visibility.hpp"
#include "sim/generator.hpp"

namespace droplens::core {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
    study_ = new Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
    index_ = new DropIndex(DropIndex::build(*study_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete study_;
    delete world_;
    delete config_;
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
  static Study* study_;
  static DropIndex* index_;
};

sim::ScenarioConfig* AnalysisTest::config_ = nullptr;
sim::World* AnalysisTest::world_ = nullptr;
Study* AnalysisTest::study_ = nullptr;
DropIndex* AnalysisTest::index_ = nullptr;

TEST_F(AnalysisTest, DropIndexCoversEveryListedPrefix) {
  EXPECT_EQ(index_->entries().size(), world_->drop.all_prefixes().size());
}

TEST_F(AnalysisTest, IncidentDetectionRecoversThePlantedClusters) {
  std::set<net::Prefix> detected;
  for (const DropEntry& e : index_->entries()) {
    if (e.incident) detected.insert(e.prefix);
  }
  std::set<net::Prefix> planted(world_->truth.incident_prefixes.begin(),
                                world_->truth.incident_prefixes.end());
  EXPECT_EQ(detected, planted);
}

TEST_F(AnalysisTest, ClassificationTotalsAreConsistent) {
  ClassificationResult r = analyze_classification(*study_, *index_);
  EXPECT_EQ(r.total_prefixes,
            static_cast<int>(index_->entries().size()));
  EXPECT_EQ(r.per_category[static_cast<size_t>(drop::Category::kNoRecord)]
                .total_prefixes(),
            config_->no_record);
  EXPECT_EQ(r.per_category[static_cast<size_t>(drop::Category::kUnallocated)]
                .total_prefixes(),
            config_->unallocated_drop);
  // NR prefixes = prefixes without a record.
  EXPECT_EQ(r.total_prefixes - r.with_record, config_->no_record);
  // Keyword counts partition the records with categories.
  EXPECT_EQ(r.records_one_keyword + r.records_two_keywords +
                r.records_no_keyword,
            r.with_record);
}

TEST_F(AnalysisTest, VisibilityRecoversWithdrawalsAndFilteringPeers) {
  VisibilityResult r = analyze_visibility(*study_, *index_);
  EXPECT_EQ(r.filtering_peers, config_->drop_filtering_peers);
  std::set<bgp::PeerId> detected;
  for (const PeerFilterStat& s : r.peer_stats) {
    if (s.appears_to_filter) detected.insert(s.peer);
  }
  std::set<bgp::PeerId> planted(world_->truth.drop_filtering_peers.begin(),
                                world_->truth.drop_filtering_peers.end());
  EXPECT_EQ(detected, planted);
  // Withdrawal CDF is monotone and ends at the headline rate.
  for (size_t i = 1; i < r.withdrawal_cdf.size(); ++i) {
    EXPECT_GE(r.withdrawal_cdf[i].fraction,
              r.withdrawal_cdf[i - 1].fraction);
  }
  EXPECT_NEAR(r.withdrawal_cdf.back().fraction, r.withdrawn_30d_rate(),
              1e-9);
  // Hijacked withdraw more than the rest (the paper's key contrast).
  size_t hj = static_cast<size_t>(drop::Category::kHijacked);
  size_t ss = static_cast<size_t>(drop::Category::kSnowshoe);
  ASSERT_GT(r.routed_by_category[hj], 0);
  double hj_rate = static_cast<double>(r.withdrawn_30d_by_category[hj]) /
                   r.routed_by_category[hj];
  double ss_rate = r.routed_by_category[ss]
                       ? static_cast<double>(r.withdrawn_30d_by_category[ss]) /
                             r.routed_by_category[ss]
                       : 0.0;
  EXPECT_GT(hj_rate, ss_rate);
}

TEST_F(AnalysisTest, RpkiUptakeOrdering) {
  RpkiUptakeResult r = analyze_rpki_uptake(*study_, *index_);
  // Population sanity: everything Table 1 counts was unsigned at reference.
  EXPECT_GT(r.never_total.total, 0);
  EXPECT_GT(r.removed_total.total, 0);
  EXPECT_GT(r.present_total.total, 0);
  // The paper's ordering: removed > never > present signing rates.
  EXPECT_GT(r.removed_total.rate(), r.never_total.rate());
  EXPECT_GT(r.never_total.rate(), r.present_total.rate());
  // §4.2 breakdown partitions the removed-and-signed set.
  EXPECT_EQ(r.removed_signed_same_asn + r.removed_signed_different_asn +
                r.removed_signed_unannounced,
            r.removed_signed);
  EXPECT_GT(r.removed_signed_different_asn, r.removed_signed_same_asn);
}

TEST_F(AnalysisTest, IrrAnalysisRecoversForgedObjects) {
  IrrResult r = analyze_irr(*study_, *index_);
  EXPECT_EQ(r.hijacker_asn_in_route_object, config_->forged_irr_hijacks);
  EXPECT_EQ(static_cast<int>(r.forged_cases.size()),
            config_->forged_irr_hijacks);
  EXPECT_LE(r.distinct_hijacking_asns, config_->hijacking_asn_count);
  EXPECT_EQ(r.late_records, config_->forged_irr_late_records);
  EXPECT_EQ(r.preexisting_entries, config_->forged_irr_preexisting);
  EXPECT_EQ(r.unallocated_with_route_object, 1);
  // The serial ORG's common transit is the paper's AS50509.
  ASSERT_TRUE(r.serial_common_transit.has_value());
  EXPECT_EQ(r.serial_common_transit->value(), 50509u);
  // Route objects exist for more prefixes than just the forged ones.
  EXPECT_GT(r.prefixes_with_route_object, r.hijacker_asn_in_route_object);
}

TEST_F(AnalysisTest, CaseStudyDetection) {
  CaseStudyResult r = analyze_case_study(*study_, *index_);
  EXPECT_EQ(r.signed_before_listing,
            config_->attacker_controlled_roas + 1);
  EXPECT_EQ(r.attacker_controlled_roas, config_->attacker_controlled_roas);
  ASSERT_EQ(r.valid_hijacks.size(), 1u);
  const RpkiValidHijack& h = r.valid_hijacks[0];
  EXPECT_EQ(h.prefix, world_->truth.case_study_prefix);
  EXPECT_EQ(h.roa_asn.value(), 263692u);
  EXPECT_EQ(h.siblings.size(), world_->truth.case_study_siblings.size());
  EXPECT_EQ(h.siblings_on_drop, 3);
  EXPECT_FALSE(h.timeline.empty());
}

TEST_F(AnalysisTest, RoaStatusSeriesIsCoherent) {
  RoaStatusResult r = analyze_roa_status(*study_);
  ASSERT_GE(r.series.size(), 2u);
  for (const RoaStatusSample& s : r.series) {
    EXPECT_GE(s.signed_slash8, s.signed_routed_slash8);
    EXPECT_GE(s.signed_slash8, 0);
    EXPECT_GE(s.alloc_unrouted_no_roa_slash8, 0);
  }
  // Signed space grows over the window; % routed declines.
  EXPECT_GT(r.last().signed_slash8, r.first().signed_slash8);
  EXPECT_LT(r.last().percent_roas_routed(), r.first().percent_roas_routed());
  // The named organizations hold most of the signed-unrouted space.
  EXPECT_GT(r.top3_share, 0.5);
  ASSERT_FALSE(r.top_signed_unrouted_holders.empty());
}

TEST_F(AnalysisTest, As0AnalysisRecoversUnallocatedListings) {
  As0Result r = analyze_as0(*study_, *index_);
  EXPECT_EQ(static_cast<int>(r.unallocated_listings.size()),
            config_->unallocated_drop);
  for (rir::Rir rir : rir::kAllRirs) {
    EXPECT_EQ(r.unallocated_by_rir[static_cast<size_t>(rir)],
              config_->unallocated_by_rir[static_cast<size_t>(rir)]);
  }
  // Pools evolve: draining dominates (LACNIC clearly shrinks); occasional
  // MH/NR deallocations may return small blocks, so other pools may tick
  // up slightly but never balloon.
  ASSERT_GE(r.pool_series.size(), 2u);
  const FreePoolSample& first = r.pool_series.front();
  const FreePoolSample& last = r.pool_series.back();
  size_t lacnic = static_cast<size_t>(rir::Rir::kLacnic);
  EXPECT_LT(last.pool_slash8[lacnic], first.pool_slash8[lacnic] * 0.7);
  for (rir::Rir rir : rir::kAllRirs) {
    size_t i = static_cast<size_t>(rir);
    EXPECT_LE(last.pool_slash8[i], first.pool_slash8[i] * 1.6 + 1e-6);
  }
  // APNIC and LACNIC pools end mostly AS0-covered; ARIN not at all.
  size_t apnic = static_cast<size_t>(rir::Rir::kApnic);
  size_t arin = static_cast<size_t>(rir::Rir::kArin);
  EXPECT_GT(last.pool_as0_covered[apnic], 0.0);
  EXPECT_EQ(last.pool_as0_covered[arin], 0.0);
  // No peer filters on the AS0 TALs; every peer carries rejectable routes.
  EXPECT_EQ(r.peers_apparently_filtering_as0, 0);
  EXPECT_GT(r.mean_as0_rejectable, 0.0);
}

}  // namespace
}  // namespace droplens::core
