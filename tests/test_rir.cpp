#include <gtest/gtest.h>

#include "rir/delegation.hpp"
#include "rir/registry.hpp"
#include "util/error.hpp"

namespace droplens::rir {
namespace {

net::Date D(int d) { return net::Date(d); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(RirNames, RoundTrip) {
  for (Rir r : kAllRirs) {
    EXPECT_EQ(parse_rir(delegation_name(r)), r);
    EXPECT_EQ(parse_rir(display_name(r)), r);
  }
  EXPECT_THROW(parse_rir("iana"), ParseError);
}

TEST(Delegation, ParsesRealisticFile) {
  auto records = parse_delegation_file(
      "2|apnic|20220330|3|19830613|20220330|+1000\n"
      "apnic|*|ipv4|*|2|summary\n"
      "apnic|CN|ipv4|1.0.0.0|256|20110414|allocated|A91872ED\n"
      "apnic|AU|ipv4|1.0.4.0|1024|20110412|assigned\n"
      "apnic||ipv4|1.4.0.0|4096||available\n"
      "apnic|JP|asn|173|1|20020801|allocated\n"  // skipped (asn)
      "# trailing comment\n");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].registry, Rir::kApnic);
  EXPECT_EQ(records[0].country, "CN");
  EXPECT_EQ(records[0].start, net::Ipv4::parse("1.0.0.0"));
  EXPECT_EQ(records[0].value, 256u);
  EXPECT_EQ(records[0].status, DelegationStatus::kAllocated);
  EXPECT_EQ(records[0].opaque_id, "A91872ED");
  EXPECT_EQ(records[1].status, DelegationStatus::kAssigned);
  EXPECT_EQ(records[2].status, DelegationStatus::kAvailable);
  EXPECT_EQ(records[2].date, net::Date(0));  // empty date convention
}

TEST(Delegation, WriteParseRoundTrip) {
  std::vector<DelegationRecord> in = {
      {Rir::kRipe, "NL", net::Ipv4::parse("185.0.0.0"), 65536,
       net::Date::parse("2013-07-01"), DelegationStatus::kAllocated, "org1"},
      {Rir::kRipe, "ZZ", net::Ipv4::parse("188.0.0.0"), 2048, net::Date(0),
       DelegationStatus::kAvailable, ""},
  };
  std::string text =
      write_delegation_file(Rir::kRipe, net::Date::parse("2022-03-30"), in);
  EXPECT_NE(text.find("2|ripencc|20220330|2|"), std::string::npos);
  EXPECT_NE(text.find("ripencc|*|ipv4|*|2|summary"), std::string::npos);
  auto out = parse_delegation_file(text);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out[0], in[0]);
  EXPECT_EQ(out[1], in[1]);
}

TEST(Delegation, RejectsMalformed) {
  EXPECT_THROW(parse_delegation_file("apnic|CN|ipv4|1.0.0.0|256\n"),
               droplens::ParseError);
  EXPECT_THROW(
      parse_delegation_file("apnic|CN|ipv4|1.0.0.0|0|20110414|allocated\n"),
      droplens::ParseError);
  EXPECT_THROW(
      parse_delegation_file(
          "apnic|CN|ipv4|255.255.255.0|512|20110414|allocated\n"),
      droplens::ParseError);
  EXPECT_THROW(
      parse_delegation_file("apnic|CN|ipv4|1.0.0.0|256|20110414|banana\n"),
      droplens::ParseError);
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry.administer(Rir::kRipe, P("185.0.0.0/8"));
    registry.administer(Rir::kApnic, P("1.0.0.0/8"));
  }
  Registry registry;
};

TEST_F(RegistryTest, AdministeredLookup) {
  EXPECT_EQ(*registry.rir_of(P("185.1.0.0/16")), Rir::kRipe);
  EXPECT_EQ(*registry.rir_of(P("1.2.3.0/24")), Rir::kApnic);
  EXPECT_FALSE(registry.rir_of(P("8.0.0.0/8")).has_value());
}

TEST_F(RegistryTest, AdministerRejectsCrossRirOverlap) {
  EXPECT_THROW(registry.administer(Rir::kArin, P("185.0.0.0/16")),
               droplens::InvariantError);
}

TEST_F(RegistryTest, AllocateLifecycle) {
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "org-a", D(100));
  EXPECT_FALSE(registry.is_allocated(P("185.1.0.0/16"), D(99)));
  EXPECT_TRUE(registry.is_allocated(P("185.1.0.0/16"), D(100)));
  EXPECT_TRUE(registry.is_allocated(P("185.1.2.0/24"), D(100)));  // covered
  const Allocation* a = registry.allocation_on(P("185.1.2.0/24"), D(150));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->holder, "org-a");

  registry.deallocate(P("185.1.0.0/16"), D(200));
  EXPECT_FALSE(registry.is_allocated(P("185.1.0.0/16"), D(200)));
  EXPECT_TRUE(registry.is_allocated(P("185.1.0.0/16"), D(199)));
  // Reallocation to someone else afterwards.
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "org-b", D(300));
  EXPECT_EQ(registry.allocation_on(P("185.1.0.0/16"), D(300))->holder,
            "org-b");
  EXPECT_EQ(registry.history(P("185.1.0.0/16")).size(), 2u);
}

TEST_F(RegistryTest, AllocationErrors) {
  EXPECT_THROW(
      registry.allocate(P("8.0.0.0/16"), Rir::kRipe, "x", D(0)),
      droplens::InvariantError);  // outside administered space
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "x", D(0));
  EXPECT_THROW(
      registry.allocate(P("185.1.2.0/24"), Rir::kRipe, "y", D(10)),
      droplens::InvariantError);  // nested live allocation
  EXPECT_THROW(
      registry.allocate(P("185.0.0.0/9"), Rir::kRipe, "y", D(10)),
      droplens::InvariantError);  // covering live allocation
  EXPECT_THROW(registry.deallocate(P("185.9.0.0/16"), D(10)),
               droplens::InvariantError);
}

TEST_F(RegistryTest, UnallocatedChecks) {
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "x", D(0));
  EXPECT_TRUE(registry.is_fully_unallocated(P("185.2.0.0/16"), D(10)));
  EXPECT_FALSE(registry.is_fully_unallocated(P("185.1.0.0/16"), D(10)));
  // Partially covered: the /15 contains the allocated /16.
  EXPECT_FALSE(registry.is_fully_unallocated(P("185.0.0.0/15"), D(10)));
  EXPECT_FALSE(registry.is_allocated(P("185.0.0.0/15"), D(10)));
}

TEST_F(RegistryTest, FreePoolArithmetic) {
  // free ∪ allocated = administered, disjoint — the DESIGN.md invariant.
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "x", D(0));
  registry.allocate(P("185.44.0.0/16"), Rir::kRipe, "y", D(0));
  net::IntervalSet free = registry.free_pool(Rir::kRipe, D(10));
  net::IntervalSet allocated = registry.allocated_space(Rir::kRipe, D(10));
  EXPECT_EQ(net::IntervalSet::set_union(free, allocated),
            registry.administered(Rir::kRipe));
  EXPECT_TRUE(net::IntervalSet::set_intersection(free, allocated).empty());
  EXPECT_EQ(allocated.size(), 2 * (uint64_t{1} << 16));
  // Deallocation returns space to the pool.
  registry.deallocate(P("185.1.0.0/16"), D(20));
  EXPECT_EQ(registry.free_pool(Rir::kRipe, D(20)).size(),
            free.size() + (uint64_t{1} << 16));
}

TEST_F(RegistryTest, SnapshotRoundTripsThroughDelegationFormat) {
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "org-a", D(100), "NL");
  auto records = registry.snapshot(Rir::kRipe, D(200));
  // One allocated record + the free-pool cover.
  size_t allocated = 0;
  uint64_t total = 0;
  for (const DelegationRecord& r : records) {
    total += r.value;
    if (r.status == DelegationStatus::kAllocated) {
      ++allocated;
      EXPECT_EQ(r.country, "NL");
      EXPECT_EQ(r.opaque_id, "org-a");
    }
  }
  EXPECT_EQ(allocated, 1u);
  EXPECT_EQ(total, uint64_t{1} << 24);  // the whole administered /8
  std::string text = write_delegation_file(Rir::kRipe, D(200), records);
  EXPECT_EQ(parse_delegation_file(text).size(), records.size());
}

TEST_F(RegistryTest, LiveAllocationsFilter) {
  registry.allocate(P("185.1.0.0/16"), Rir::kRipe, "a", D(0));
  registry.allocate(P("1.1.0.0/16"), Rir::kApnic, "b", D(0));
  EXPECT_EQ(registry.live_allocations(D(5)).size(), 2u);
  EXPECT_EQ(registry.live_allocations(Rir::kRipe, D(5)).size(), 1u);
}

}  // namespace
}  // namespace droplens::rir
