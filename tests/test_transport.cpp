// The hardened serving edge: timer-wheel semantics, accept-errno policy,
// connection caps with typed refusals, idle/read deadlines (the slowloris
// regression, on both transports and all three protocol fronts), write-queue
// backpressure, shed-priority ordering, hostile-client drills via
// sim::NetFaultInjector, and byte-identical answers across the threads and
// epoll transports.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/drop_index.hpp"
#include "core/engine.hpp"
#include "irr/whois.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "sim/net_fault_injector.hpp"
#include "svc/epoll_transport.hpp"
#include "svc/admin_http.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/transport.hpp"
#include "svc/whois_service.hpp"
#include "util/error.hpp"

namespace droplens {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// TimerWheel

TEST(TimerWheel, FiresInDeadlineThenIdOrder) {
  svc::TimerWheel wheel(/*now_ms=*/1000, /*tick_ms=*/10);
  wheel.arm(7, 1045);
  wheel.arm(3, 1025);
  wheel.arm(9, 1025);  // same deadline as 3: id breaks the tie
  wheel.arm(1, 1035);
  EXPECT_EQ(wheel.armed(), 4u);

  std::vector<uint64_t> expired;
  wheel.advance(1010, expired);
  EXPECT_TRUE(expired.empty());  // nothing due yet
  wheel.advance(1050, expired);
  EXPECT_EQ(expired, (std::vector<uint64_t>{3, 9, 1, 7}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, CancelPreventsExpiryAndRearmReplaces) {
  svc::TimerWheel wheel(0, 10);
  wheel.arm(1, 20);
  wheel.cancel(1);
  std::vector<uint64_t> expired;
  wheel.advance(100, expired);
  EXPECT_TRUE(expired.empty());

  wheel.arm(2, 30);
  wheel.arm(2, 500);  // re-arm pushes the deadline out; the old slot entry
                      // is stale and must not fire
  wheel.advance(200, expired);
  EXPECT_TRUE(expired.empty());
  wheel.advance(510, expired);
  EXPECT_EQ(expired, std::vector<uint64_t>{2});
}

TEST(TimerWheel, DeadlineBeyondOneRevolutionWaitsFullTerm) {
  // 8 slots x 1 ms tick: one revolution is 8 ms. A 20 ms deadline shares a
  // slot with near-term ticks but must survive two revolutions untouched.
  svc::TimerWheel wheel(0, /*tick_ms=*/1, /*slots=*/8);
  wheel.arm(1, 20);
  std::vector<uint64_t> expired;
  wheel.advance(7, expired);
  EXPECT_TRUE(expired.empty());
  wheel.advance(19, expired);
  EXPECT_TRUE(expired.empty());
  wheel.advance(20, expired);
  EXPECT_EQ(expired, std::vector<uint64_t>{1});
}

TEST(TimerWheel, PastDeadlineStillFires) {
  svc::TimerWheel wheel(1000, 10);
  wheel.arm(5, 900);  // already overdue when armed
  std::vector<uint64_t> expired;
  wheel.advance(1011, expired);  // next tick after the cursor
  EXPECT_EQ(expired, std::vector<uint64_t>{5});
}

TEST(TimerWheel, NextWakeDelayTracksTickBoundary) {
  svc::TimerWheel wheel(1000, 10);
  EXPECT_EQ(wheel.next_wake_delay(1003, /*idle_hint=*/250), 250u);  // nothing armed
  wheel.arm(1, 1100);
  const uint64_t delay = wheel.next_wake_delay(1003, 250);
  EXPECT_GT(delay, 0u);
  EXPECT_LE(delay, 10u);  // never sleeps past the next tick while armed
}

// ---------------------------------------------------------------------------
// accept(2) errno policy

TEST(AcceptErrno, ClassifiesTransientBackoffAndFatal) {
  EXPECT_EQ(svc::accept_errno_action(EINTR), svc::AcceptAction::kRetry);
  EXPECT_EQ(svc::accept_errno_action(ECONNABORTED), svc::AcceptAction::kRetry);
  EXPECT_EQ(svc::accept_errno_action(EAGAIN), svc::AcceptAction::kRetry);
  EXPECT_EQ(svc::accept_errno_action(EMFILE),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::accept_errno_action(ENFILE),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::accept_errno_action(ENOBUFS),
            svc::AcceptAction::kRetryBackoff);
  EXPECT_EQ(svc::accept_errno_action(EBADF), svc::AcceptAction::kFatal);
  EXPECT_EQ(svc::accept_errno_action(EINVAL), svc::AcceptAction::kFatal);
}

// ---------------------------------------------------------------------------
// Test scaffolding

/// Newline-delimited echo protocol with every robustness hook typed, so the
/// transport's refusals are observable as distinct byte strings. "big N"
/// answers with N raw bytes (for backpressure tests); a "bulk"/"ctl" prefix
/// sets the shed class.
class EchoService : public svc::Service {
 public:
  static constexpr size_t kMaxLine = 64;

  size_t message_size(std::string_view buffer) const override {
    size_t pos = buffer.find('\n');
    if (pos == std::string_view::npos) {
      if (buffer.size() > kMaxLine) throw ParseError("echo: line too long");
      return 0;
    }
    return pos + 1;
  }
  std::string serve(std::string_view message) override {
    std::string_view line = message.substr(0, message.size() - 1);
    if (line.rfind("big ", 0) == 0) {
      size_t n = 0;
      for (char c : line.substr(4)) n = n * 10 + static_cast<size_t>(c - '0');
      return std::string(n, 'x');
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    return "echo:" + std::string(line) + "\n";
  }
  std::string malformed_response(std::string_view) override { return "bad\n"; }
  svc::MessageClass classify(std::string_view message) const override {
    if (message.rfind("bulk", 0) == 0) return svc::MessageClass::kBulk;
    if (message.rfind("ctl", 0) == 0) return svc::MessageClass::kControl;
    return svc::MessageClass::kNormal;
  }
  std::string overload_response(std::string_view message) override {
    return message.empty() ? "busy-conn\n" : "shed\n";
  }
  std::string timeout_response() override { return "too-slow\n"; }

  size_t served() const { return served_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> served_{0};
};

size_t line_framer(std::string_view buffer) {
  size_t pos = buffer.find('\n');
  return pos == std::string_view::npos ? 0 : pos + 1;
}

/// Raw client socket; `rcvbuf` shrinks the receive window before connect so
/// backpressure tests control how much the kernel absorbs.
int raw_connect(uint16_t port, int rcvbuf = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Read until the server closes (or `timeout_ms` passes). Returns the bytes
/// received; `saw_eof` reports whether the close actually arrived.
std::string raw_read_to_eof(int fd, int timeout_ms, bool* saw_eof = nullptr) {
  std::string out;
  if (saw_eof) *saw_eof = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    int r = ::poll(&p, 1, 50);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0 || (n < 0 && errno != EINTR)) {
      if (saw_eof) *saw_eof = (n == 0 || errno == ECONNRESET);
      break;
    }
  }
  return out;
}

/// Poll `cond` until it holds or `timeout_ms` passes — for assertions
/// against server-side counters that a worker thread updates.
template <typename F>
bool eventually(F cond, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return cond();
}

size_t reason_count(const svc::TransportStats& s, svc::DisconnectReason r) {
  return s.disconnects[static_cast<size_t>(r)];
}

// ---------------------------------------------------------------------------
// Both transports, one contract

class TransportEdge : public ::testing::TestWithParam<svc::TransportKind> {
 protected:
  std::unique_ptr<svc::TransportServer> make(svc::Service& service,
                                             const svc::TransportOptions& o) {
    return svc::make_transport_server(GetParam(), service, o);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Kinds, TransportEdge,
    ::testing::Values(svc::TransportKind::kThreads,
                      svc::TransportKind::kEpoll),
    [](const ::testing::TestParamInfo<svc::TransportKind>& info) {
      return info.param == svc::TransportKind::kEpoll ? "epoll" : "threads";
    });

TEST_P(TransportEdge, ConnectionCapRejectsWithTypedReply) {
  EchoService service;
  svc::TransportOptions o;
  o.max_conns = 1;
  auto server = make(service, o);

  svc::TcpClientConnection inside("127.0.0.1", server->port(), line_framer);
  EXPECT_EQ(inside.roundtrip("hi\n"), "echo:hi\n");

  // The second connection is over the cap: typed refusal, then close.
  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  bool eof = false;
  EXPECT_EQ(raw_read_to_eof(fd, 3000, &eof), "busy-conn\n");
  EXPECT_TRUE(eof);
  ::close(fd);

  // The in-cap connection is unharmed.
  EXPECT_EQ(inside.roundtrip("still here\n"), "echo:still here\n");
  svc::TransportStats stats = server->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.overload_rejected, 1u);
  EXPECT_EQ(stats.open, 1u);
}

TEST_P(TransportEdge, IdleConnectionGetsTimeoutReplyThenClose) {
  EchoService service;
  svc::TransportOptions o;
  o.idle_timeout_ms = 150;
  auto server = make(service, o);

  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  bool eof = false;
  EXPECT_EQ(raw_read_to_eof(fd, 5000, &eof), "too-slow\n");
  EXPECT_TRUE(eof);
  ::close(fd);
  EXPECT_TRUE(eventually([&] {
    return reason_count(server->stats(), svc::DisconnectReason::kIdleTimeout) ==
           1;
  }));
}

TEST_P(TransportEdge, MalformedHeadGetsTypedReplyThenClose) {
  EchoService service;
  auto server = make(service, svc::TransportOptions{});

  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, std::string(EchoService::kMaxLine + 20, 'z')));
  bool eof = false;
  EXPECT_EQ(raw_read_to_eof(fd, 5000, &eof), "bad\n");
  EXPECT_TRUE(eof);
  ::close(fd);
  EXPECT_TRUE(eventually([&] {
    return reason_count(server->stats(), svc::DisconnectReason::kMalformed) ==
           1;
  }));
}

// The slowloris regression, against the whois front: a byte-at-a-time
// client must be disconnected at the read deadline with the typed F line,
// no matter how steadily it drips.
TEST_P(TransportEdge, WhoisSlowlorisIsCutAtReadDeadline) {
  irr::Database db;
  irr::WhoisServer whois(db, net::Date::parse("2021-01-01"));
  svc::WhoisService service(whois);
  svc::TransportOptions o;
  o.read_deadline_ms = 150;
  auto server = make(service, o);

  sim::NetFaultInjector::Config config;
  config.port = server->port();
  config.seed = 42;
  config.message = "!gAS64500\n";
  config.clients = 4;
  config.drip_delay_ms = 80;  // ~800 ms per message, deadline at 150 ms
  config.duration_ms = 8000;
  sim::NetFaultInjector::Report report =
      sim::NetFaultInjector::run(sim::NetFaultInjector::Profile::kSlowDrip,
                                 config);
  EXPECT_EQ(report.connected, 4u);
  EXPECT_EQ(report.closed_by_server, 4u);
  EXPECT_EQ(report.gave_up, 0u);
  EXPECT_GT(report.bytes_received, 0u);  // the typed F replies
  EXPECT_TRUE(eventually([&] {
    return reason_count(server->stats(),
                        svc::DisconnectReason::kReadDeadline) == 4;
  }));
}

TEST_P(TransportEdge, WhoisOverlongLineIsRefusedNotBuffered) {
  irr::Database db;
  irr::WhoisServer whois(db, net::Date::parse("2021-01-01"));
  svc::WhoisService service(whois);
  auto server = make(service, svc::TransportOptions{});

  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, std::string(svc::WhoisService::kMaxLine + 10, 'x')));
  bool eof = false;
  EXPECT_EQ(raw_read_to_eof(fd, 5000, &eof), "F line too long\n");
  EXPECT_TRUE(eof);
  ::close(fd);
}

TEST_P(TransportEdge, HttpSlowlorisGets408) {
  obs::Registry registry;
  svc::AdminHttpService service(registry);
  svc::TransportOptions o;
  o.read_deadline_ms = 150;
  auto server = make(service, o);

  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, "GET /metr"));  // head never completes
  bool eof = false;
  std::string reply = raw_read_to_eof(fd, 5000, &eof);
  EXPECT_EQ(reply.rfind("HTTP/1.1 408", 0), 0u) << reply;
  EXPECT_TRUE(eof);
  ::close(fd);
}

TEST_P(TransportEdge, HttpOversizedHeadGets431) {
  obs::Registry registry;
  svc::AdminHttpService service(registry);
  auto server = make(service, svc::TransportOptions{});

  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  std::string head = "GET /metrics HTTP/1.1\r\nX-Filler: ";
  head.append(svc::AdminHttpService::kMaxHead, 'a');  // never terminated
  ASSERT_TRUE(raw_send(fd, head));
  bool eof = false;
  std::string reply = raw_read_to_eof(fd, 5000, &eof);
  EXPECT_EQ(reply.rfind("HTTP/1.1 431", 0), 0u) << reply;
  EXPECT_TRUE(eof);
  ::close(fd);
}

TEST_P(TransportEdge, HttpOversizedBodyGets413) {
  obs::Registry registry;
  svc::AdminHttpService service(registry);
  auto server = make(service, svc::TransportOptions{});

  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd,
                       "POST /metrics HTTP/1.1\r\nContent-Length: "
                       "1000000\r\n\r\n"));
  bool eof = false;
  std::string reply = raw_read_to_eof(fd, 5000, &eof);
  EXPECT_EQ(reply.rfind("HTTP/1.1 413", 0), 0u) << reply;
  EXPECT_TRUE(eof);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Epoll-only semantics: backpressure, shedding, floods

TEST(EpollEdge, WriteQueueWatermarkDisconnectsSlowReader) {
  EchoService service;
  svc::TransportOptions o;
  o.max_write_buffer = 64 * 1024;
  o.so_sndbuf = 4096;  // tiny kernel buffer: the queue grows in userspace
  svc::EpollServer server(service, o);

  // A 256 KiB response to a client that never reads: the kernel absorbs a
  // few tens of KiB, the rest crosses the watermark immediately.
  int fd = raw_connect(server.port(), /*rcvbuf=*/8192);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, "big 262144\n"));
  EXPECT_TRUE(eventually([&] {
    return reason_count(server.stats(),
                        svc::DisconnectReason::kWriteOverflow) == 1;
  }));
  ::close(fd);
}

TEST(EpollEdge, NeverReadingClientIsBounded) {
  EchoService service;
  svc::TransportOptions o;
  o.max_write_buffer = 64 * 1024;
  o.so_sndbuf = 4096;
  svc::EpollServer server(service, o);

  sim::NetFaultInjector::Config config;
  config.port = server.port();
  config.seed = 7;
  config.message = "big 262144\n";
  config.clients = 3;
  config.repeats = 2;
  config.duration_ms = 8000;
  sim::NetFaultInjector::Report report = sim::NetFaultInjector::run(
      sim::NetFaultInjector::Profile::kNeverRead, config);
  EXPECT_EQ(report.connected, 3u);
  EXPECT_EQ(report.closed_by_server, 3u);
  EXPECT_TRUE(eventually([&] {
    return reason_count(server.stats(),
                        svc::DisconnectReason::kWriteOverflow) == 3;
  }));
}

TEST(EpollEdge, ShedsLowestPriorityFirstServesControlLast) {
  EchoService service;
  svc::TransportOptions o;
  o.max_inflight = 4;  // bulk sheds at load >= 2, normal at 4, control at 8
  svc::EpollServer server(service, o);
  svc::TcpClientConnection client("127.0.0.1", server.port(), line_framer);

  // Unloaded: every class is served.
  EXPECT_EQ(client.roundtrip("bulk scan\n"), "echo:bulk scan\n");
  EXPECT_EQ(client.roundtrip("query\n"), "echo:query\n");
  EXPECT_EQ(client.roundtrip("ctl stats\n"), "echo:ctl stats\n");

  // Load at M/2: bulk sheds, queries and control still flow.
  server.set_inflight_bias_for_tests(2);
  EXPECT_EQ(client.roundtrip("bulk scan\n"), "shed\n");
  EXPECT_EQ(client.roundtrip("query\n"), "echo:query\n");
  EXPECT_EQ(client.roundtrip("ctl stats\n"), "echo:ctl stats\n");

  // Load at M: queries shed too; the observability plane stays up.
  server.set_inflight_bias_for_tests(4);
  EXPECT_EQ(client.roundtrip("bulk scan\n"), "shed\n");
  EXPECT_EQ(client.roundtrip("query\n"), "shed\n");
  EXPECT_EQ(client.roundtrip("ctl stats\n"), "echo:ctl stats\n");

  // Load at 2M: even control goes dark.
  server.set_inflight_bias_for_tests(8);
  EXPECT_EQ(client.roundtrip("ctl stats\n"), "shed\n");

  svc::TransportStats stats = server.stats();
  EXPECT_EQ(stats.shed[static_cast<size_t>(svc::MessageClass::kBulk)], 2u);
  EXPECT_EQ(stats.shed[static_cast<size_t>(svc::MessageClass::kNormal)], 1u);
  EXPECT_EQ(stats.shed[static_cast<size_t>(svc::MessageClass::kControl)], 1u);

  // Back below every threshold: full service resumes on the same connection.
  server.set_inflight_bias_for_tests(0);
  EXPECT_EQ(client.roundtrip("bulk scan\n"), "echo:bulk scan\n");
}

TEST(EpollEdge, ConnectFloodIsCappedEvictedAndRecoversCleanly) {
  EchoService service;
  svc::TransportOptions o;
  o.max_conns = 4;
  o.idle_timeout_ms = 200;  // the held herd is evicted, not kept
  svc::EpollServer server(service, o);

  sim::NetFaultInjector::Config config;
  config.port = server.port();
  config.clients = 16;
  config.duration_ms = 4000;
  sim::NetFaultInjector::Report report = sim::NetFaultInjector::run(
      sim::NetFaultInjector::Profile::kConnectFlood, config);
  EXPECT_EQ(report.connected, 16u);
  EXPECT_EQ(report.closed_by_server, 16u);  // 12 refused + 4 idle-evicted
  EXPECT_GT(report.bytes_received, 0u);     // typed refusals went out

  svc::TransportStats stats = server.stats();
  EXPECT_EQ(stats.overload_rejected, 12u);
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(reason_count(stats, svc::DisconnectReason::kIdleTimeout), 4u);

  // After the flood subsides a healthy client is served normally.
  svc::TcpClientConnection client("127.0.0.1", server.port(), line_framer);
  EXPECT_EQ(client.roundtrip("healthy\n"), "echo:healthy\n");
  EXPECT_EQ(server.stats().accepted, 5u);
}

TEST(EpollEdge, MidFrameDisconnectsAreCountedAsPeerClosed) {
  EchoService service;
  svc::EpollServer server(service, svc::TransportOptions{});

  sim::NetFaultInjector::Config config;
  config.port = server.port();
  config.seed = 11;
  config.message = "a message that is cut somewhere in the middle\n";
  config.clients = 6;
  config.duration_ms = 5000;
  sim::NetFaultInjector::Report report = sim::NetFaultInjector::run(
      sim::NetFaultInjector::Profile::kMidFrameDisconnect, config);
  EXPECT_EQ(report.connected, 6u);
  EXPECT_TRUE(eventually([&] {
    return reason_count(server.stats(),
                        svc::DisconnectReason::kPeerClosed) == 6;
  }));
  EXPECT_EQ(server.stats().open, 0u);
}

TEST(EpollEdge, StopWhileConnectionsAreOpenCountsServerStop) {
  EchoService service;
  auto server =
      std::make_unique<svc::EpollServer>(service, svc::TransportOptions{});
  int fd = raw_connect(server->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(eventually([&] { return server->stats().open == 1; }));
  server->stop();
  svc::TransportStats stats = server->stats();
  EXPECT_EQ(reason_count(stats, svc::DisconnectReason::kServerStop), 1u);
  EXPECT_EQ(stats.open, 0u);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Cross-transport fidelity: same Service, byte-identical wire behavior

class TransportWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* TransportWorld::config_ = nullptr;
sim::World* TransportWorld::world_ = nullptr;

TEST_F(TransportWorld, BinaryAnswersAreByteIdenticalAcrossTransports) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  svc::Server server(svc::compile_snapshot(s, index, d, 7));

  svc::TransportOptions o;
  svc::TcpServer threads_srv(server, o);
  svc::EpollServer epoll_srv(server, o);

  std::vector<svc::Query> batch;
  for (const core::DropEntry& e : index.entries()) {
    batch.push_back(svc::Query{d, e.prefix, svc::kAllFields});
  }
  batch.push_back(
      svc::Query{d, net::Prefix::parse("10.0.0.0/8"), svc::kAllFields});
  ASSERT_FALSE(batch.empty());
  const std::string request = svc::encode_query_request(batch);

  svc::TcpClientConnection via_threads("127.0.0.1", threads_srv.port(),
                                       svc::frame_size);
  svc::TcpClientConnection via_epoll("127.0.0.1", epoll_srv.port(),
                                     svc::frame_size);
  svc::LoopbackConnection loop(server);
  const std::string reference = loop.roundtrip(request);
  EXPECT_EQ(via_threads.roundtrip(request), reference);
  EXPECT_EQ(via_epoll.roundtrip(request), reference);
}

TEST_F(TransportWorld, WhoisAnswersAreByteIdenticalAcrossTransports) {
  irr::WhoisServer whois(world_->irr, config_->window_begin + 60);
  svc::WhoisService service(whois);
  svc::TcpServer threads_srv(service, svc::TransportOptions{});
  svc::EpollServer epoll_srv(service, svc::TransportOptions{});

  net::Asn origin(0);
  for (const irr::Registration& reg : world_->irr.all_history()) {
    if (reg.live_on(config_->window_begin + 60)) {
      origin = reg.object.origin;
      break;
    }
  }
  const std::vector<std::string> queries = {
      "!gAS" + std::to_string(origin.value()) + "\n",
      "!gAS4294967296\n",  // bad ASN: typed F line
      "!gASbanana\n",
  };
  svc::TcpClientConnection via_threads("127.0.0.1", threads_srv.port(),
                                       svc::whois_response_size);
  svc::TcpClientConnection via_epoll("127.0.0.1", epoll_srv.port(),
                                     svc::whois_response_size);
  for (const std::string& q : queries) {
    const std::string direct =
        whois.handle(std::string_view(q).substr(0, q.size() - 1));
    EXPECT_EQ(via_threads.roundtrip(q), direct) << q;
    EXPECT_EQ(via_epoll.roundtrip(q), direct) << q;
  }
}

}  // namespace
}  // namespace droplens
