#include <gtest/gtest.h>

#include "bgp/fleet.hpp"
#include "bgp/rib.hpp"
#include "util/error.hpp"

namespace droplens::bgp {
namespace {

net::Date D(int d) { return net::Date(d); }
net::Asn A(uint32_t a) { return net::Asn(a); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(AsPath, OriginAndContains) {
  AsPath path{A(100), A(200), A(300)};
  EXPECT_EQ(path.origin(), A(300));
  EXPECT_TRUE(path.contains(A(200)));
  EXPECT_FALSE(path.contains(A(400)));
  EXPECT_EQ(path.to_string(), "100 200 300");
}

TEST(PeerRib, AnnounceWithdrawLifecycle) {
  PeerRib rib;
  Update announce{D(10), 0, UpdateType::kAnnounce, P("10.0.0.0/8"),
                  AsPath{A(1), A(2)}};
  rib.apply(announce);
  EXPECT_EQ(rib.size(), 1u);
  ASSERT_NE(rib.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(rib.find(P("10.0.0.0/8"))->path.origin(), A(2));

  // Re-announcement replaces the path.
  announce.path = AsPath{A(1), A(3)};
  announce.date = D(11);
  rib.apply(announce);
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.find(P("10.0.0.0/8"))->path.origin(), A(3));

  rib.apply(Update{D(12), 0, UpdateType::kWithdraw, P("10.0.0.0/8"), {}});
  EXPECT_EQ(rib.size(), 0u);
  EXPECT_EQ(rib.find(P("10.0.0.0/8")), nullptr);
}

TEST(PeerRib, LongestMatchPrefersMoreSpecific) {
  PeerRib rib;
  rib.apply(Update{D(1), 0, UpdateType::kAnnounce, P("10.0.0.0/8"),
                   AsPath{A(8)}});
  rib.apply(Update{D(1), 0, UpdateType::kAnnounce, P("10.2.0.0/16"),
                   AsPath{A(16)}});
  const Route* r = rib.longest_match(P("10.2.3.0/24"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->path.origin(), A(16));
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uint32_t c = fleet.add_collector("rv0");
    for (int i = 0; i < 10; ++i) {
      fleet.add_peer(c, A(9000 + static_cast<uint32_t>(i)));
    }
  }
  CollectorFleet fleet;
};

TEST_F(FleetTest, EpisodeQueries) {
  fleet.announce(P("10.0.0.0/8"), AsPath{A(1), A(2)},
                 {D(100), D(200)});
  EXPECT_TRUE(fleet.announced_on(P("10.0.0.0/8"), D(100)));
  EXPECT_TRUE(fleet.announced_on(P("10.0.0.0/8"), D(199)));
  EXPECT_FALSE(fleet.announced_on(P("10.0.0.0/8"), D(200)));
  EXPECT_FALSE(fleet.announced_on(P("10.0.0.0/8"), D(99)));
  EXPECT_EQ(*fleet.first_announced(P("10.0.0.0/8")), D(100));
  EXPECT_EQ(*fleet.last_announced(P("10.0.0.0/8")), D(199));
  EXPECT_FALSE(fleet.first_announced(P("11.0.0.0/8")).has_value());
}

TEST_F(FleetTest, RoutedOnSeesMoreSpecifics) {
  fleet.announce(P("10.2.0.0/16"), AsPath{A(1)}, {D(100), D(200)});
  EXPECT_TRUE(fleet.routed_on(P("10.0.0.0/8"), D(150)));
  EXPECT_FALSE(fleet.announced_on(P("10.0.0.0/8"), D(150)));
  EXPECT_FALSE(fleet.routed_on(P("10.0.0.0/8"), D(250)));
}

TEST_F(FleetTest, MoasConflictReportsBothOrigins) {
  fleet.announce(P("10.0.0.0/8"), AsPath{A(1), A(100)}, {D(100), D(300)});
  fleet.announce(P("10.0.0.0/8"), AsPath{A(2), A(200)}, {D(150), D(250)});
  auto origins = fleet.origins_on(P("10.0.0.0/8"), D(200));
  EXPECT_EQ(origins.size(), 2u);
  EXPECT_EQ(fleet.origins_on(P("10.0.0.0/8"), D(120)).size(), 1u);
}

TEST_F(FleetTest, RejectsBadAnnouncements) {
  EXPECT_THROW(fleet.announce(P("10.0.0.0/8"), AsPath{}, {D(1), D(2)}),
               InvariantError);
  EXPECT_THROW(fleet.announce(P("10.0.0.0/8"), AsPath{A(1)}, {D(2), D(2)}),
               InvariantError);
}

TEST_F(FleetTest, PeerFilterAffectsObservation) {
  CollectorFleet f;
  uint32_t c = f.add_collector("rv0");
  f.add_peer(c, A(1));
  f.add_peer(c, A(2), true, [](const net::Prefix& p, net::Date) {
    return p == net::Prefix::parse("10.0.0.0/8");
  });
  f.announce(P("10.0.0.0/8"), AsPath{A(5), A(6)},
             {D(0), net::DateRange::unbounded()});
  f.announce(P("11.0.0.0/8"), AsPath{A(5), A(6)},
             {D(0), net::DateRange::unbounded()});
  EXPECT_EQ(f.observing_peers(P("10.0.0.0/8"), D(10)), 1u);
  EXPECT_EQ(f.observing_peers(P("11.0.0.0/8"), D(10)), 2u);
  EXPECT_FALSE(f.peer_observes(1, P("10.0.0.0/8"), D(10)));
  EXPECT_TRUE(f.peer_observes(0, P("10.0.0.0/8"), D(10)));
  auto table0 = f.peer_table(0, D(10));
  auto table1 = f.peer_table(1, D(10));
  EXPECT_EQ(table0.size(), 2u);
  EXPECT_EQ(table1.size(), 1u);
}

TEST_F(FleetTest, RoutedSpaceCollapsesOverlap) {
  fleet.announce(P("10.0.0.0/8"), AsPath{A(1)},
                 {D(0), net::DateRange::unbounded()});
  fleet.announce(P("10.2.0.0/16"), AsPath{A(2)},
                 {D(0), net::DateRange::unbounded()});
  EXPECT_EQ(fleet.routed_space(D(5)).size(), uint64_t{1} << 24);
  EXPECT_EQ(fleet.routed_space(D(5)).slash8_equivalents(), 1.0);
}

TEST_F(FleetTest, UpdateStreamReplayMatchesPeerTable) {
  fleet.announce(P("10.0.0.0/8"), AsPath{A(1), A(2)}, {D(100), D(200)});
  fleet.announce(P("11.0.0.0/8"), AsPath{A(1), A(3)},
                 {D(150), net::DateRange::unbounded()});
  PeerRib rib;
  for (const Update& u : fleet.update_stream(0)) {
    if (u.date <= D(170)) rib.apply(u);
  }
  auto table = fleet.peer_table(0, D(170));
  EXPECT_EQ(rib.size(), table.size());
  for (const Route& r : table) {
    const Route* in_rib = rib.find(r.prefix);
    ASSERT_NE(in_rib, nullptr);
    EXPECT_EQ(in_rib->path, r.path);
  }
}

TEST_F(FleetTest, UpdateStreamIsDateOrdered) {
  fleet.announce(P("11.0.0.0/8"), AsPath{A(1)}, {D(300), D(400)});
  fleet.announce(P("10.0.0.0/8"), AsPath{A(1)}, {D(100), D(200)});
  auto stream = fleet.update_stream(0);
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream[i - 1].date, stream[i].date);
  }
}

TEST_F(FleetTest, AnnouncedPrefixesOnFiltersbyDate) {
  fleet.announce(P("10.0.0.0/8"), AsPath{A(1)}, {D(100), D(200)});
  fleet.announce(P("11.0.0.0/8"), AsPath{A(1)}, {D(300), D(400)});
  EXPECT_EQ(fleet.announced_prefixes_on(D(150)).size(), 1u);
  EXPECT_EQ(fleet.announced_prefixes_on(D(350)).size(), 1u);
  EXPECT_EQ(fleet.announced_prefixes_on(D(250)).size(), 0u);
  EXPECT_EQ(fleet.announced_prefixes().size(), 2u);
}

}  // namespace
}  // namespace droplens::bgp
