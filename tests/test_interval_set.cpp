#include <gtest/gtest.h>

#include "net/cidr_cover.hpp"
#include "net/interval_set.hpp"
#include "sim/rng.hpp"
#include "util/error.hpp"

namespace droplens::net {
namespace {

TEST(IntervalSet, InsertCoalescesOverlap) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(15, 30);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 20u);
}

TEST(IntervalSet, InsertCoalescesAdjacent) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(20, 30);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.size(), 20u);
}

TEST(IntervalSet, InsertDisjointKeepsSeparate) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.size(), 20u);
}

TEST(IntervalSet, InsertCoveredIsNoop) {
  IntervalSet s;
  s.insert(0, 100);
  s.insert(10, 20);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet s;
  s.insert(5, 5);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet s;
  s.insert(0, 100);
  s.erase(40, 60);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.size(), 80u);
  EXPECT_FALSE(s.contains(Ipv4(50)));
  EXPECT_TRUE(s.contains(Ipv4(39)));
  EXPECT_TRUE(s.contains(Ipv4(60)));
}

TEST(IntervalSet, EraseEverything) {
  IntervalSet s;
  s.insert(10, 20);
  s.erase(0, 100);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, PrefixOperations) {
  IntervalSet s;
  Prefix p = Prefix::parse("10.0.0.0/8");
  s.insert(p);
  EXPECT_TRUE(s.covers(Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(s.covers(p));
  EXPECT_FALSE(s.covers(Prefix::parse("0.0.0.0/0")));
  EXPECT_TRUE(s.intersects(Prefix::parse("0.0.0.0/0")));
  EXPECT_FALSE(s.intersects(Prefix::parse("11.0.0.0/8")));
  EXPECT_DOUBLE_EQ(s.slash8_equivalents(), 1.0);
}

TEST(IntervalSet, CoversPartialIsFalse) {
  IntervalSet s;
  s.insert(Prefix::parse("10.0.0.0/9"));
  EXPECT_FALSE(s.covers(Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(s.intersects(Prefix::parse("10.0.0.0/8")));
}

TEST(IntervalSet, TopOfAddressSpace) {
  IntervalSet s;
  s.insert(Prefix::parse("255.0.0.0/8"));
  EXPECT_TRUE(s.contains(Ipv4::parse("255.255.255.255")));
  EXPECT_EQ(s.size(), uint64_t{1} << 24);
}

TEST(IntervalSet, SetAlgebra) {
  IntervalSet a, b;
  a.insert(0, 50);
  b.insert(30, 80);
  IntervalSet u = IntervalSet::set_union(a, b);
  IntervalSet i = IntervalSet::set_intersection(a, b);
  IntervalSet d = IntervalSet::set_difference(a, b);
  EXPECT_EQ(u.size(), 80u);
  EXPECT_EQ(i.size(), 20u);
  EXPECT_EQ(d.size(), 30u);
  // inclusion-exclusion
  EXPECT_EQ(u.size() + i.size(), a.size() + b.size());
}

// Property sweep against a reference bitset model.
class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, MatchesBitsetModel) {
  sim::Rng rng(GetParam());
  constexpr uint64_t kUniverse = 4096;
  IntervalSet set;
  std::vector<bool> model(kUniverse, false);
  for (int op = 0; op < 300; ++op) {
    uint64_t a = rng.below(kUniverse);
    uint64_t b = rng.below(kUniverse);
    if (a > b) std::swap(a, b);
    if (rng.chance(0.7)) {
      set.insert(a, b);
      for (uint64_t x = a; x < b; ++x) model[x] = true;
    } else {
      set.erase(a, b);
      for (uint64_t x = a; x < b; ++x) model[x] = false;
    }
    uint64_t model_size = 0;
    for (bool v : model) model_size += v;
    ASSERT_EQ(set.size(), model_size) << "op " << op;
    // Canonical form: sorted, disjoint, non-adjacent.
    const auto& ivs = set.intervals();
    for (size_t k = 1; k < ivs.size(); ++k) {
      ASSERT_GT(ivs[k].begin, ivs[k - 1].end);
    }
  }
  // Point membership agrees everywhere.
  for (uint64_t x = 0; x < kUniverse; ++x) {
    ASSERT_EQ(set.contains(Ipv4(static_cast<uint32_t>(x))), model[x]) << x;
  }
}

TEST_P(IntervalSetPropertyTest, AlgebraLaws) {
  sim::Rng rng(GetParam() ^ 0xabcdef);
  auto random_set = [&] {
    IntervalSet s;
    for (int i = 0; i < 20; ++i) {
      uint64_t a = rng.below(100000);
      s.insert(a, a + rng.below(5000) + 1);
    }
    return s;
  };
  for (int round = 0; round < 20; ++round) {
    IntervalSet a = random_set();
    IntervalSet b = random_set();
    IntervalSet u = IntervalSet::set_union(a, b);
    IntervalSet i = IntervalSet::set_intersection(a, b);
    EXPECT_EQ(u.size() + i.size(), a.size() + b.size());
    // a \ b and a ∩ b partition a
    IntervalSet d = IntervalSet::set_difference(a, b);
    EXPECT_EQ(d.size() + i.size(), a.size());
    // commutativity
    EXPECT_EQ(IntervalSet::set_union(b, a), u);
    EXPECT_EQ(IntervalSet::set_intersection(b, a), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(CidrCover, ExactRanges) {
  auto cover = cidr_cover(0, 256);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].to_string(), "0.0.0.0/24");
}

TEST(CidrCover, UnalignedRange) {
  // [1, 7) = 1/32, 2/31, 4/31, 6/32
  auto cover = cidr_cover(1, 7);
  uint64_t total = 0;
  for (const Prefix& p : cover) total += p.size();
  EXPECT_EQ(total, 6u);
  ASSERT_EQ(cover.size(), 4u);
}

TEST(CidrCover, WholeSpace) {
  auto cover = cidr_cover(0, uint64_t{1} << 32);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].length(), 0);
}

TEST(CidrCover, RejectsBadRange) {
  EXPECT_THROW(cidr_cover(10, 5), InvariantError);
  EXPECT_THROW(cidr_cover(0, (uint64_t{1} << 32) + 1), InvariantError);
}

class CidrCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CidrCoverPropertyTest, CoverIsExactDisjointAndMinimal) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.below(uint64_t{1} << 32);
    uint64_t b = rng.below(uint64_t{1} << 32);
    if (a > b) std::swap(a, b);
    auto cover = cidr_cover(a, b);
    // Exact: pieces tile [a, b) in order with no gaps or overlaps.
    uint64_t at = a;
    for (const Prefix& p : cover) {
      ASSERT_EQ(p.first(), at);
      at = p.end();
    }
    ASSERT_EQ(at, b);
    // Minimal: at most 2*32 pieces, and no two adjacent pieces of equal
    // size that could merge into an aligned parent.
    ASSERT_LE(cover.size(), 64u);
    for (size_t k = 1; k < cover.size(); ++k) {
      if (cover[k].length() == cover[k - 1].length() &&
          cover[k - 1].length() > 0) {
        EXPECT_NE(cover[k - 1].parent(), Prefix::containing(
            cover[k].network(), cover[k].length() - 1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CidrCoverPropertyTest,
                         ::testing::Values(7, 77, 777));

TEST(CidrCover, RoundTripsThroughIntervalSet) {
  IntervalSet s;
  s.insert(100, 1000);
  s.insert(5000, 5100);
  IntervalSet rebuilt;
  for (const Prefix& p : cidr_cover(s)) rebuilt.insert(p);
  EXPECT_EQ(rebuilt, s);
}

}  // namespace
}  // namespace droplens::net
