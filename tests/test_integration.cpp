// Cross-module integration: serialized artifacts (MRT streams, DROP feeds,
// IRR dumps) reconstruct state that matches the live objects — the paper's
// archive-driven methodology, closed under round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt.hpp"
#include "bgp/rib.hpp"
#include "drop/feed.hpp"
#include "irr/snapshot.hpp"
#include "sim/generator.hpp"

namespace droplens {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* IntegrationTest::config_ = nullptr;
sim::World* IntegrationTest::world_ = nullptr;

TEST_F(IntegrationTest, MrtStreamReplaysIntoMatchingRibs) {
  // Serialize a peer's full update stream to MRT-lite bytes, read it back,
  // replay into a RIB, and compare against the fleet's peer table on
  // several probe dates. Use a non-filtering peer: update_stream evaluates
  // import policy at announce time, peer_table at query time, so a
  // DROP-filtering peer's two views legitimately differ while a prefix is
  // listed.
  bgp::PeerId peer = world_->truth.drop_filtering_peers.back() + 1;
  std::vector<bgp::Update> stream = world_->fleet.update_stream(peer);
  std::stringstream buf;
  bgp::write_mrtl(buf, stream);
  std::vector<bgp::Update> replayed = bgp::read_mrtl(buf);
  ASSERT_EQ(replayed.size(), stream.size());

  for (int offset : {100, 500, 900}) {
    net::Date probe = config_->window_begin + offset;
    bgp::PeerRib rib;
    for (const bgp::Update& u : replayed) {
      if (u.date <= probe) rib.apply(u);
    }
    std::vector<bgp::Route> table = world_->fleet.peer_table(peer, probe);
    ASSERT_EQ(rib.size(), table.size()) << "day +" << offset;
    for (const bgp::Route& r : table) {
      const bgp::Route* in_rib = rib.find(r.prefix);
      ASSERT_NE(in_rib, nullptr) << r.prefix.to_string();
      EXPECT_EQ(in_rib->path, r.path) << r.prefix.to_string();
    }
  }
}

TEST_F(IntegrationTest, DailyDropFeedsReconstructTheList) {
  // Render the DROP list as daily Firehol-style feeds over the window and
  // rebuild it the way the paper did.
  std::vector<std::pair<net::Date, std::vector<drop::FeedEntry>>> days;
  for (net::Date d = config_->window_begin; d <= config_->window_end;
       d += 1) {
    days.emplace_back(d,
                      drop::parse_drop_feed(write_drop_feed(world_->drop, d)));
  }
  drop::DropList rebuilt = drop::from_daily_feeds(days);

  for (const net::Prefix& p : world_->drop.all_prefixes()) {
    auto original = world_->drop.listings_of(p);
    auto recovered = rebuilt.listings_of(p);
    ASSERT_EQ(recovered.size(), original.size()) << p.to_string();
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(recovered[i].listed.begin, original[i].listed.begin)
          << p.to_string();
      // Removal dates match; still-listed stints stay open.
      if (original[i].listed.end != net::DateRange::unbounded() &&
          original[i].listed.end <= config_->window_end) {
        EXPECT_EQ(recovered[i].listed.end, original[i].listed.end)
            << p.to_string();
      }
      EXPECT_EQ(recovered[i].sbl_id, original[i].sbl_id) << p.to_string();
    }
  }
}

TEST_F(IntegrationTest, WeeklyIrrDumpsRecoverRegistrationTiming) {
  // Reconstruct the IRR from weekly dumps; lifetimes are recovered at
  // archive granularity (within 7 days), pre-window objects clamp to the
  // first snapshot.
  std::vector<std::pair<net::Date, std::string>> dumps;
  for (net::Date d = config_->window_begin; d <= config_->window_end;
       d += 7) {
    dumps.emplace_back(d, world_->irr.snapshot_rpsl(d));
  }
  irr::Database rebuilt = irr::from_daily_snapshots(dumps);

  for (const irr::Registration& reg : world_->irr.all_history()) {
    if (reg.lifetime.begin <= config_->window_begin) continue;
    if (reg.lifetime.begin >= config_->window_end) continue;
    // Objects removed between snapshots of their creation can be missed;
    // check the ones that lived at least a week.
    if (reg.lifetime.end != net::DateRange::unbounded() &&
        reg.lifetime.end - reg.lifetime.begin < 8) {
      continue;
    }
    bool found = false;
    for (const irr::Registration& rec : rebuilt.history(reg.object.prefix)) {
      if (rec.object.origin != reg.object.origin) continue;
      found = true;
      EXPECT_GE(rec.lifetime.begin, reg.lifetime.begin);
      EXPECT_LE(rec.lifetime.begin - reg.lifetime.begin, 7);
    }
    EXPECT_TRUE(found) << reg.object.prefix.to_string();
  }
}

}  // namespace
}  // namespace droplens
