// Graceful per-day degradation: when the ingestion ledger (core::DataQuality)
// marks days unavailable, the sampling analyses must skip-and-count those days
// — never throw, never fabricate values — the untouched analyses must produce
// byte-identical output, and the determinism contract (same report for every
// thread count) must survive degradation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/as0_analysis.hpp"
#include "core/data_quality.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "core/roa_status.hpp"
#include "drop/feed.hpp"
#include "sim/fault_injector.hpp"
#include "sim/generator.hpp"
#include "util/parse_report.hpp"

namespace droplens {
namespace {

class DegradationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  std::vector<net::Date> sample_dates() const {
    return core::engine::sample_dates(study());
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* DegradationTest::config_ = nullptr;
sim::World* DegradationTest::world_ = nullptr;

TEST_F(DegradationTest, RoaStatusSkipsAndCountsUnavailableDays) {
  const std::vector<net::Date> dates = sample_dates();
  ASSERT_GE(dates.size(), 4u);

  core::DataQuality quality;
  quality.mark_day_unavailable(core::Feed::kRoas, dates[1]);
  quality.mark_day_unavailable(core::Feed::kRoas, dates[2]);
  core::Study degraded = study();
  degraded.quality = &quality;

  core::RoaStatusResult clean = analyze_roa_status(study());
  core::RoaStatusResult result = analyze_roa_status(degraded);

  EXPECT_EQ(clean.degraded_samples, 0u);
  EXPECT_EQ(result.degraded_samples, 2u);
  ASSERT_EQ(result.series.size(), dates.size());
  EXPECT_FALSE(result.series[0].degraded);
  EXPECT_TRUE(result.series[1].degraded);
  EXPECT_TRUE(result.series[2].degraded);
  EXPECT_EQ(result.series[1].signed_slash8, 0.0);  // skipped, not fabricated

  // The measured samples match the clean run exactly.
  for (size_t i = 0; i < dates.size(); ++i) {
    if (result.series[i].degraded) continue;
    EXPECT_EQ(result.series[i].signed_slash8, clean.series[i].signed_slash8)
        << i;
  }
  // first()/last() step over degraded samples.
  EXPECT_FALSE(result.first().degraded);
  EXPECT_FALSE(result.last().degraded);
  EXPECT_EQ(result.first().date, dates[0]);
}

TEST_F(DegradationTest, FreePoolSeriesDegradesOnMissingDelegations) {
  const std::vector<net::Date> dates = sample_dates();
  core::DataQuality quality;
  quality.mark_day_unavailable(core::Feed::kDelegations, dates[0]);
  core::Study degraded = study();
  degraded.quality = &quality;

  core::DropIndex index = core::DropIndex::build(degraded);
  core::As0Result result = analyze_as0(degraded, index);
  EXPECT_EQ(result.degraded_samples, 1u);
  ASSERT_FALSE(result.pool_series.empty());
  EXPECT_TRUE(result.pool_series[0].degraded);
  for (double v : result.pool_series[0].pool_slash8) EXPECT_EQ(v, 0.0);
  EXPECT_FALSE(result.pool_series[1].degraded);
}

TEST_F(DegradationTest, LastAvailableDateStepsPastDegradedTail) {
  const std::vector<net::Date> dates = sample_dates();
  core::DataQuality quality;
  quality.mark_day_unavailable(core::Feed::kRoas, dates.back());
  core::Study degraded = study();
  degraded.quality = &quality;

  auto end = core::engine::last_available_date(
      degraded, {core::Feed::kRoas, core::Feed::kBgpUpdates});
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, dates[dates.size() - 2]);

  // With every grid date unavailable there is no fallback date at all —
  // and the analysis still returns (zeroed) instead of throwing.
  core::DataQuality nothing;
  for (net::Date d : dates) {
    nothing.mark_day_unavailable(core::Feed::kRoas, d);
  }
  core::Study dark = study();
  dark.quality = &nothing;
  EXPECT_FALSE(core::engine::last_available_date(dark, {core::Feed::kRoas})
                   .has_value());
  core::RoaStatusResult result = analyze_roa_status(dark);
  EXPECT_EQ(result.degraded_samples, result.series.size());
  EXPECT_TRUE(result.top_signed_unrouted_holders.empty());
}

// The determinism contract survives degradation: skipped days are decided by
// date, and degraded counters aggregate sequentially after the parallel loop.
TEST_F(DegradationTest, ReportIsByteIdenticalAcrossThreadCountsWhenDegraded) {
  const std::vector<net::Date> dates = sample_dates();
  core::DataQuality quality;
  quality.mark_day_unavailable(core::Feed::kRoas, dates[1]);
  quality.mark_day_unavailable(core::Feed::kRoas, dates[3]);
  quality.mark_day_unavailable(core::Feed::kDelegations, dates[2]);

  core::ReportOptions options;
  options.include_series = true;

  options.threads = 1;
  std::ostringstream sequential;
  core::Study s1 = study();
  s1.quality = &quality;
  int sections_seq = core::write_report(sequential, s1, options);

  options.threads = 8;
  std::ostringstream parallel;
  core::Study s8 = study();
  s8.quality = &quality;
  int sections_par = core::write_report(parallel, s8, options);

  EXPECT_EQ(sections_seq, sections_par);
  EXPECT_EQ(sequential.str(), parallel.str());
  EXPECT_NE(sequential.str().find("## Data quality"), std::string::npos);
  // dates[1] and dates[3] lack ROAs, dates[2] lacks delegations — the ROA
  // status sampler needs all three substrates, so it degrades on all three.
  EXPECT_NE(sequential.str().find("Degraded samples: roa_status 3/"),
            std::string::npos)
      << sequential.str();
}

TEST_F(DegradationTest, UntouchedSectionsMatchTheCleanReportByteForByte) {
  core::ReportOptions options;
  options.threads = 2;

  std::ostringstream clean_out;
  core::Study clean = study();
  core::write_report(clean_out, clean, options);

  const std::vector<net::Date> dates = sample_dates();
  core::DataQuality quality;
  quality.mark_day_unavailable(core::Feed::kRoas, dates[1]);
  std::ostringstream degraded_out;
  core::Study degraded = study();
  degraded.quality = &quality;
  core::write_report(degraded_out, degraded, options);

  // Everything before the RPKI section reads only per-entry substrate state,
  // not per-day snapshots — degradation must not perturb a single byte.
  const std::string marker = "\n## Effectiveness of RPKI";
  size_t clean_cut = clean_out.str().find(marker);
  size_t degraded_cut = degraded_out.str().find(marker);
  ASSERT_NE(clean_cut, std::string::npos);
  ASSERT_NE(degraded_cut, std::string::npos);
  EXPECT_EQ(clean_out.str().substr(0, clean_cut),
            degraded_out.str().substr(0, degraded_cut));

  // A clean study renders no quality section; the degraded one does.
  EXPECT_EQ(clean_out.str().find("## Data quality"), std::string::npos);
  EXPECT_NE(degraded_out.str().find("## Data quality"), std::string::npos);
}

TEST_F(DegradationTest, DataQualityLedgerAggregatesAndRenders) {
  core::DataQuality quality;
  util::ParseReport a("day-001.feed");
  a.add_parsed(100);
  util::ParseReport b("day-002.feed");
  b.add_parsed(90);
  b.add_error(12, "bad prefix");
  b.add_error(40, "bad prefix");
  util::ParseReport c("day-003.feed");
  c.add_parsed(95);
  c.add_error(7, "junk line");
  quality.note_input(core::Feed::kDropFeed, a);
  quality.note_input(core::Feed::kDropFeed, b);
  quality.note_input(core::Feed::kDropFeed, c);
  quality.mark_day_unavailable(core::Feed::kBgpUpdates, net::Date(123));

  EXPECT_FALSE(quality.clean());
  EXPECT_EQ(quality.total_skipped(), 3u);
  EXPECT_EQ(quality.total_unavailable_days(), 1u);
  EXPECT_EQ(quality.report(core::Feed::kDropFeed).parsed(), 285u);
  EXPECT_EQ(quality.report(core::Feed::kDropFeed).skipped(), 3u);
  EXPECT_FALSE(quality.day_available(core::Feed::kBgpUpdates, net::Date(123)));
  EXPECT_TRUE(quality.day_available(core::Feed::kBgpUpdates, net::Date(124)));
  EXPECT_TRUE(quality.day_available(core::Feed::kDropFeed, net::Date(123)));

  // Worst inputs: only the dirty files, worst first.
  const auto& worst = quality.worst_inputs(core::Feed::kDropFeed);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].input(), "day-002.feed");
  EXPECT_EQ(worst[1].input(), "day-003.feed");

  std::ostringstream out;
  quality.render(out);
  EXPECT_NE(out.str().find("DROP feed"), std::string::npos);
  EXPECT_NE(out.str().find("day-002.feed"), std::string::npos);
  EXPECT_NE(out.str().find("BGP updates"), std::string::npos);
}

// End to end: a corrupted daily DROP-feed archive, ingested leniently, feeds
// a DataQuality ledger whose counts match the injected damage exactly.
TEST_F(DegradationTest, CorruptedArchiveRoundTripsThroughLenientIngestion) {
  const std::vector<net::Date> dates = sample_dates();
  sim::FaultInjector::DailyArchive archive;
  for (net::Date d : dates) {
    archive.emplace_back(d, drop::write_drop_feed(world_->drop, d));
  }

  sim::FaultInjector inj(31);
  constexpr int kGarbagePerDay = 2;
  // Corrupt every other day, drop one, and shuffle delivery order.
  size_t corrupted_days = 0;
  for (size_t i = 0; i < archive.size(); i += 2) {
    archive[i].second = inj.garbage_lines(archive[i].second, kGarbagePerDay);
    ++corrupted_days;
  }
  std::vector<net::Date> dropped = inj.drop_days(archive, 1);
  ASSERT_EQ(dropped.size(), 1u);
  inj.shuffle_days(archive);

  core::DataQuality quality;
  std::vector<std::pair<net::Date, std::vector<drop::FeedEntry>>> days;
  for (const auto& [date, text] : archive) {
    util::ParseReport report(date.to_string() + ".feed");
    days.emplace_back(date,
                      drop::parse_drop_feed(
                          text, util::ParsePolicy::kLenient, &report));
    quality.note_input(core::Feed::kDropFeed, report);
  }
  for (net::Date d : dropped) {
    quality.mark_day_unavailable(core::Feed::kDropFeed, d);
  }
  // from_daily_feeds sorts the shuffled days itself; the rebuild succeeds.
  drop::DropList rebuilt = drop::from_daily_feeds(days);
  EXPECT_FALSE(rebuilt.all_prefixes().empty());

  // Ledger totals equal the injected damage: dropped day may or may not have
  // been one of the corrupted ones, so recount what garbage survived.
  size_t expected_skips = 0;
  for (net::Date d : dates) {
    bool was_dropped = d == dropped[0];
    size_t index = 0;
    while (dates[index] != d) ++index;
    if (!was_dropped && index % 2 == 0) {
      expected_skips += kGarbagePerDay;
    }
  }
  EXPECT_EQ(quality.total_skipped(), expected_skips);
  EXPECT_EQ(quality.total_unavailable_days(), 1u);
  EXPECT_FALSE(quality.clean());
}

}  // namespace
}  // namespace droplens
