// IRR snapshot diffing, database reconstruction, and as-set filters.
#include <gtest/gtest.h>

#include "irr/sets.hpp"
#include "irr/snapshot.hpp"

namespace droplens::irr {
namespace {

net::Date D(const char* s) { return net::Date::parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

std::string dump(std::initializer_list<std::pair<const char*, uint32_t>>
                     routes) {
  std::string out;
  for (const auto& [prefix, asn] : routes) {
    out += "route: " + std::string(prefix) + "\norigin: AS" +
           std::to_string(asn) + "\nsource: RADB\n\n";
  }
  return out;
}

TEST(SnapshotDiff, DetectsCreationsAndRemovals) {
  std::string day1 = dump({{"10.0.0.0/16", 1}, {"11.0.0.0/16", 2}});
  std::string day2 = dump({{"10.0.0.0/16", 1}, {"12.0.0.0/16", 3}});
  SnapshotDiff diff = diff_snapshots(day1, day2);
  ASSERT_EQ(diff.created.size(), 1u);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.created[0].prefix, P("12.0.0.0/16"));
  EXPECT_EQ(diff.removed[0].prefix, P("11.0.0.0/16"));
}

TEST(SnapshotDiff, OriginChangeIsRemovePlusCreate) {
  // Same prefix, new origin: identity is (prefix, origin).
  SnapshotDiff diff = diff_snapshots(dump({{"10.0.0.0/16", 1}}),
                                     dump({{"10.0.0.0/16", 666}}));
  EXPECT_EQ(diff.created.size(), 1u);
  EXPECT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.created[0].origin, net::Asn(666));
}

TEST(SnapshotDiff, IdenticalDumpsAreEmpty) {
  std::string day = dump({{"10.0.0.0/16", 1}});
  EXPECT_TRUE(diff_snapshots(day, day).empty());
}

TEST(SnapshotReconstruction, RecoversLifetimes) {
  std::vector<std::pair<net::Date, std::string>> days = {
      {D("2020-01-01"), dump({{"10.0.0.0/16", 1}})},
      {D("2020-01-02"), dump({{"10.0.0.0/16", 1}, {"11.0.0.0/16", 666}})},
      {D("2020-01-03"), dump({{"10.0.0.0/16", 1}})},
  };
  Database db = from_daily_snapshots(days);
  // 10/16 live throughout.
  EXPECT_EQ(db.exact(P("10.0.0.0/16"), D("2020-01-03")).size(), 1u);
  // 11/16 created on day 2, removed on day 3 — the §5 register-then-vanish
  // pattern, recovered from archives only.
  auto history = db.history(P("11.0.0.0/16"));
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].lifetime.begin, D("2020-01-02"));
  EXPECT_EQ(history[0].lifetime.end, D("2020-01-03"));
}

TEST(SnapshotReconstruction, RoundTripsAgainstLiveDatabase) {
  // Build a database with known lifetimes, dump daily, reconstruct, and
  // compare the recovered lifetimes.
  Database original;
  RouteObject obj;
  obj.prefix = P("10.0.0.0/16");
  obj.origin = net::Asn(1);
  obj.created = D("2020-01-02");
  original.register_object(obj);
  obj.prefix = P("11.0.0.0/16");
  obj.origin = net::Asn(2);
  obj.created = D("2020-01-04");
  original.register_object(obj);
  original.remove_object(P("11.0.0.0/16"), net::Asn(2), D("2020-01-06"));

  std::vector<std::pair<net::Date, std::string>> days;
  for (net::Date d = D("2020-01-01"); d < D("2020-01-08"); d += 1) {
    days.emplace_back(d, original.snapshot_rpsl(d));
  }
  Database rebuilt = from_daily_snapshots(days);
  EXPECT_EQ(rebuilt.total_registrations(), 2u);
  auto h11 = rebuilt.history(P("11.0.0.0/16"));
  ASSERT_EQ(h11.size(), 1u);
  EXPECT_EQ(h11[0].lifetime.begin, D("2020-01-04"));
  EXPECT_EQ(h11[0].lifetime.end, D("2020-01-06"));
  EXPECT_EQ(rebuilt.history(P("10.0.0.0/16"))[0].lifetime.end,
            net::DateRange::unbounded());
}

TEST(AsSets, ParseAndSerialize) {
  auto objects = parse_rpsl(
      "as-set: AS-EXAMPLE\n"
      "members: AS64500, AS64501, AS-CUSTOMERS\n"
      "source: RADB\n");
  AsSet set = AsSet::from_rpsl(objects[0]);
  EXPECT_EQ(set.name, "AS-EXAMPLE");
  ASSERT_EQ(set.members.size(), 2u);
  ASSERT_EQ(set.set_members.size(), 1u);
  EXPECT_EQ(set.set_members[0], "AS-CUSTOMERS");
  // Round trip.
  AsSet again = AsSet::from_rpsl(parse_rpsl(set.to_rpsl())[0]);
  EXPECT_EQ(again, set);
}

TEST(AsSets, ExpansionHandlesNestingAndCycles) {
  std::map<std::string, AsSet> sets;
  sets["AS-A"] = AsSet{"AS-A", {net::Asn(1)}, {"AS-B", "AS-MISSING"}};
  sets["AS-B"] = AsSet{"AS-B", {net::Asn(2), net::Asn(3)}, {"AS-A"}};  // cycle
  std::vector<net::Asn> asns = expand_as_set(sets, "AS-A");
  ASSERT_EQ(asns.size(), 3u);
  EXPECT_EQ(asns[0], net::Asn(1));
  EXPECT_EQ(asns[2], net::Asn(3));
  EXPECT_TRUE(expand_as_set(sets, "AS-NONE").empty());
}

TEST(AsSets, FilterBuilderPicksUpForgedObjects) {
  // The operational hazard of §5: a transit provider expanding a customer
  // as-set imports whatever route objects the customer registered —
  // including forged ones.
  Database db;
  RouteObject good;
  good.prefix = P("10.0.0.0/16");
  good.origin = net::Asn(64500);
  good.created = D("2020-01-01");
  db.register_object(good);
  RouteObject forged;
  forged.prefix = P("203.0.0.0/16");  // someone else's abandoned space
  forged.origin = net::Asn(64500);    // same customer ASN
  forged.created = D("2021-01-01");
  db.register_object(forged);

  auto filter = build_prefix_filter(db, {net::Asn(64500)}, D("2021-06-01"));
  ASSERT_EQ(filter.size(), 2u);  // the forged prefix rides along
  // Before the forgery existed the filter was clean.
  EXPECT_EQ(build_prefix_filter(db, {net::Asn(64500)}, D("2020-06-01")).size(),
            1u);
}

}  // namespace
}  // namespace droplens::irr
