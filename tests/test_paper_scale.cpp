// Paper-scale regression test: the full default scenario must land within
// tolerance of the paper's headline numbers. This is the end-to-end check
// that the reproduction holds its shape (EXPERIMENTS.md documents the
// targets in detail). Runs in ~15 s.
#include <gtest/gtest.h>

#include "core/as0_analysis.hpp"
#include "core/case_study.hpp"
#include "core/classification.hpp"
#include "core/drop_index.hpp"
#include "core/irr_analysis.hpp"
#include "core/roa_status.hpp"
#include "core/rpki_uptake.hpp"
#include "core/defenses.hpp"
#include "core/maxlength.hpp"
#include "core/serial_hijackers.hpp"
#include "core/visibility.hpp"
#include "sim/generator.hpp"

namespace droplens::core {
namespace {

class PaperScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig();
    world_ = sim::generate(*config_).release();
    study_ = new Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
    index_ = new DropIndex(DropIndex::build(*study_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete study_;
    delete world_;
    delete config_;
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
  static Study* study_;
  static DropIndex* index_;
};

sim::ScenarioConfig* PaperScaleTest::config_ = nullptr;
sim::World* PaperScaleTest::world_ = nullptr;
Study* PaperScaleTest::study_ = nullptr;
DropIndex* PaperScaleTest::index_ = nullptr;

TEST_F(PaperScaleTest, Section3Composition) {
  ClassificationResult r = analyze_classification(*study_, *index_);
  EXPECT_EQ(r.total_prefixes, 712);                     // paper: 712
  EXPECT_EQ(r.with_record, 526);                        // paper: 526
  EXPECT_EQ(r.incident_prefixes, 45);                   // paper: 45
  double incident_share = static_cast<double>(r.incident_space.size()) /
                          static_cast<double>(r.total_space.size());
  EXPECT_NEAR(incident_share, 0.488, 0.05);             // paper: 48.8%
  EXPECT_NEAR(r.with_asn_annotation, 190, 25);          // paper: 190
  EXPECT_NEAR(r.hijacked_with_asn, 130, 15);            // paper: 130
  // Snowshoe: ~1/3 of prefixes, ~8.5% of space.
  const CategoryStats& ss =
      r.per_category[static_cast<size_t>(drop::Category::kSnowshoe)];
  EXPECT_NEAR(ss.total_prefixes(), 225, 10);
  EXPECT_NEAR(static_cast<double>(ss.space.size()) /
                  static_cast<double>(r.total_space.size()),
              0.085, 0.03);
}

TEST_F(PaperScaleTest, Section41Visibility) {
  VisibilityResult r = analyze_visibility(*study_, *index_);
  EXPECT_NEAR(r.withdrawn_30d_rate(), 0.19, 0.03);      // paper: 19%
  size_t hj = static_cast<size_t>(drop::Category::kHijacked);
  size_t ua = static_cast<size_t>(drop::Category::kUnallocated);
  EXPECT_NEAR(static_cast<double>(r.withdrawn_30d_by_category[hj]) /
                  r.routed_by_category[hj],
              0.707, 0.08);                             // paper: 70.7%
  EXPECT_NEAR(static_cast<double>(r.withdrawn_30d_by_category[ua]) /
                  r.routed_by_category[ua],
              0.548, 0.15);                             // paper: 54.8%
  EXPECT_EQ(r.filtering_peers, 3);                      // paper: 3 peers
  EXPECT_NEAR(static_cast<double>(r.mh_deallocated) /
                  r.mh_allocated_at_listing,
              0.174, 0.10);                             // paper: 17.4%
  EXPECT_NEAR(static_cast<double>(r.removed_deallocated) /
                  r.removed_prefixes,
              0.088, 0.05);                             // paper: 8.8%
}

TEST_F(PaperScaleTest, Table1SigningRates) {
  RpkiUptakeResult r = analyze_rpki_uptake(*study_, *index_);
  EXPECT_NEAR(r.never_total.rate(), 0.223, 0.03);       // paper: 22.3%
  EXPECT_NEAR(r.removed_total.rate(), 0.425, 0.08);     // paper: 42.5%
  EXPECT_NEAR(r.present_total.rate(), 0.138, 0.08);     // paper: 13.8%
  EXPECT_NEAR(r.never_total.total, 195600, 8000);       // paper: 195.6K
  EXPECT_EQ(r.removed_total.total, 186);                // paper: 186
  // §4.2 ASN comparison.
  EXPECT_NEAR(static_cast<double>(r.removed_signed_different_asn) /
                  r.removed_signed,
              0.823, 0.12);                             // paper: 82.3%
  EXPECT_NEAR(static_cast<double>(r.removed_signed_same_asn) /
                  r.removed_signed,
              0.063, 0.08);                             // paper: 6.3%
}

TEST_F(PaperScaleTest, Section5Irr) {
  IrrResult r = analyze_irr(*study_, *index_);
  EXPECT_NEAR(r.prefixes_with_route_object, 226, 20);   // paper: 226
  EXPECT_NEAR(static_cast<double>(r.route_object_space.size()) /
                  static_cast<double>(r.drop_space.size()),
              0.688, 0.08);                             // paper: 68.8%
  EXPECT_EQ(r.hijacker_asn_in_route_object, 57);        // paper: 57
  EXPECT_NEAR(r.hijacked_with_asn, 130, 15);            // paper: 130
  EXPECT_EQ(r.distinct_hijacking_asns, 13);             // paper: 13
  EXPECT_EQ(r.top3_org_prefixes, 49);                   // paper: 49
  EXPECT_EQ(r.late_records, 2);                         // paper: 2
  EXPECT_EQ(r.preexisting_entries, 5);                  // paper: 5
  EXPECT_EQ(r.unallocated_with_route_object, 1);        // paper: 1
  ASSERT_TRUE(r.serial_common_transit.has_value());
  EXPECT_EQ(r.serial_common_transit->value(), 50509u);  // paper: AS50509
  // Fig 3: all but the late records hit BGP within a week.
  int within_week = 0;
  for (const ForgedIrrCase& c : r.forged_cases) {
    if (c.days_irr_to_bgp >= 0 && c.days_irr_to_bgp < 7) ++within_week;
  }
  EXPECT_EQ(within_week, 55);                           // paper: 55 of 57
}

TEST_F(PaperScaleTest, Section61CaseStudy) {
  CaseStudyResult r = analyze_case_study(*study_, *index_);
  EXPECT_EQ(r.signed_before_listing, 3);                // paper: 3
  EXPECT_EQ(r.attacker_controlled_roas, 2);             // paper: 2
  ASSERT_EQ(r.valid_hijacks.size(), 1u);                // paper: 1 (Fig 4)
  const RpkiValidHijack& h = r.valid_hijacks[0];
  EXPECT_EQ(h.prefix.to_string(), "132.255.0.0/22");
  EXPECT_EQ(h.roa_asn.value(), 263692u);
  EXPECT_EQ(h.siblings.size(), 6u);                     // paper: 6
  EXPECT_EQ(h.siblings_on_drop, 3);                     // paper: 3
}

TEST_F(PaperScaleTest, Fig5SpaceAccounting) {
  RoaStatusResult r = analyze_roa_status(*study_);
  EXPECT_NEAR(r.first().signed_slash8, 49.1, 2.0);
  EXPECT_NEAR(r.last().signed_slash8, 70.4, 2.0);
  EXPECT_NEAR(r.first().percent_roas_routed(), 97.1, 1.0);
  EXPECT_NEAR(r.last().percent_roas_routed(), 90.5, 1.0);
  EXPECT_NEAR(r.first().signed_unrouted_nonas0_slash8, 1.6, 0.5);
  EXPECT_NEAR(r.last().signed_unrouted_nonas0_slash8, 6.7, 0.5);
  EXPECT_NEAR(r.first().alloc_unrouted_no_roa_slash8, 29.2, 1.0);
  EXPECT_NEAR(r.last().alloc_unrouted_no_roa_slash8, 30.0, 1.0);
  EXPECT_NEAR(r.arin_share_of_unrouted_unsigned, 0.608, 0.05);
  EXPECT_NEAR(r.top3_share, 0.701, 0.08);               // paper: 70.1%
  ASSERT_GE(r.top_signed_unrouted_holders.size(), 3u);
  EXPECT_EQ(r.top_signed_unrouted_holders[0].holder, "Amazon");
  EXPECT_NEAR(r.top_signed_unrouted_holders[0].slash8, 3.1, 0.2);
}

TEST_F(PaperScaleTest, Fig6Fig7As0) {
  As0Result r = analyze_as0(*study_, *index_);
  EXPECT_EQ(r.unallocated_listings.size(), 40u);        // paper: 40
  EXPECT_EQ(r.unallocated_by_rir[static_cast<size_t>(rir::Rir::kLacnic)],
            19);                                        // paper: 19
  EXPECT_EQ(r.unallocated_by_rir[static_cast<size_t>(rir::Rir::kAfrinic)],
            12);                                        // paper: 12
  EXPECT_GT(r.listed_after_policy, 0);  // hijacks continued after AS0
  EXPECT_EQ(r.peers_apparently_filtering_as0, 0);       // paper: none
  EXPECT_NEAR(r.mean_as0_rejectable, 30.0, 12.0);       // paper: ~30
}

TEST_F(PaperScaleTest, ExtensionMaxLengthVulnerability) {
  MaxLengthResult r = analyze_maxlength(*study_, config_->window_end);
  // Gilad et al. (June 2017): 84% of maxLength ROAs vulnerable.
  EXPECT_NEAR(r.vulnerable_rate(), 0.84, 0.08);
  EXPECT_NEAR(r.maxlength_share(), 0.12, 0.04);
}

TEST_F(PaperScaleTest, ExtensionDefenseMatrix) {
  DefenseMatrixResult r = analyze_defenses(*study_, *index_);
  EXPECT_GT(r.total(), 150);  // ~174 hijack+unallocated announcements
  // ROV as deployed stops (nearly) nothing — the hijacks target unsigned
  // space, and the RPKI-valid hijack passes by construction.
  EXPECT_LE(r.blocked_by_defense[static_cast<size_t>(Defense::kRov)], 2);
  // Enforced RIR AS0 stops every unallocated squat (40 of them).
  size_t ua = static_cast<size_t>(HijackKind::kUnallocated);
  EXPECT_EQ(r.events_by_kind[ua], 40);
  EXPECT_EQ(r.blocked_by_kind[ua][static_cast<size_t>(Defense::kRovRirAs0)],
            40);
  // A substantial share of the hijacks falls only to AS0 policies, and a
  // larger one to nothing at all (abandoned unsigned space) — the paper's
  // case for RPKI eligibility reform.
  EXPECT_GE(r.unstoppable_without_as0, 40);
  EXPECT_GT(r.blocked_by_nothing, 30);
}

TEST_F(PaperScaleTest, ExtensionSerialHijackers) {
  SerialHijackerResult r = analyze_serial_hijackers(*study_, *index_);
  // Most of the 13 planted hijacking ASNs are recovered, with no false
  // positives among legitimate operators.
  EXPECT_GE(static_cast<int>(r.flagged.size()), 8);
  for (const OriginProfile& p : r.flagged) {
    EXPECT_GE(p.asn.value(), 61000u) << p.asn.to_string();
    EXPECT_LT(p.asn.value(), 61100u) << p.asn.to_string();
  }
}

}  // namespace
}  // namespace droplens::core
