// The full-table scale tier (`ctest -L scale`).
//
// Builds one seeded full-table-magnitude fixture — generate_scale() →
// compile_snapshot() → `.dls` in the build tree — and proves the fast data
// plane at that magnitude: the compiled and the mmap-loaded snapshot answer
// byte-identically to the plain upper_bound reference path, through
// Snapshot::lookup_batch and through real svc::Server frames, for any
// thread count, and the delta writer/loader round-trips million-element
// segment arrays exactly.
//
// The fixture `.dls` is cached under DROPLENS_SCALE_FIXTURE_DIR: the first
// run in a build tree generates the world and compiles (the expensive
// step); later runs mmap the cached file and skip generation. The whole
// binary is registered as ONE ctest test so every case shares the fixture
// within a single process. Magnitude defaults to 1M routed prefixes in
// plain builds and 200K under ASan/TSan (instrumented runs cost ~5-10x);
// DROPLENS_SCALE_PREFIXES overrides either.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "sim/scale.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_io.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DROPLENS_SCALE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DROPLENS_SCALE_SANITIZED 1
#endif
#endif

namespace droplens {
namespace {

size_t scale_prefix_count() {
  if (const char* env = std::getenv("DROPLENS_SCALE_PREFIXES")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
#ifdef DROPLENS_SCALE_SANITIZED
  return 200'000;
#else
  return 1'000'000;
#endif
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The shared fixture: built (or loaded from cache) once per process.
struct ScaleFixture {
  sim::ScaleConfig config;
  std::string path;
  // Set only on a cold cache, when the world was generated and compiled.
  std::unique_ptr<sim::World> world;
  std::shared_ptr<const svc::Snapshot> compiled;
  // Always set: the mmap view over the fixture file.
  std::shared_ptr<const svc::Snapshot> loaded;

  static const ScaleFixture& get() {
    static ScaleFixture* f = [] {
      auto* fx = new ScaleFixture;
      fx->config.routed_prefixes = scale_prefix_count();
      const std::string dir = DROPLENS_SCALE_FIXTURE_DIR;
      std::filesystem::create_directories(dir);
      fx->path = dir + "/scale_" + std::to_string(fx->config.routed_prefixes) +
                 "_" + std::to_string(fx->config.seed) + ".dls";
      if (!std::filesystem::exists(fx->path)) {
        fx->world = sim::generate_scale(fx->config);
        core::Study study{fx->world->registry, fx->world->fleet,
                          fx->world->irr,      fx->world->roas,
                          fx->world->drop,     fx->world->sbl,
                          fx->world->config.window_begin,
                          fx->world->config.window_end};
        const core::DropIndex index = core::DropIndex::build(study);
        fx->compiled = svc::compile_snapshot(study, index, fx->config.day, 1);
        // save_snapshot writes tmp + rename, so concurrent cold runs in one
        // build tree each produce a complete file and the rename wins race-
        // free.
        svc::save_snapshot(*fx->compiled, fx->path);
      }
      fx->loaded = svc::load_snapshot(fx->path, 1);
      return fx;
    }();
    return *f;
  }
};

/// Deterministic probe corpus: interval boundaries of every substrate plus
/// seeded randoms, at mixed prefix lengths.
std::vector<net::Prefix> probe_corpus(const svc::Snapshot& snap, size_t want) {
  std::vector<net::Prefix> probes;
  std::mt19937_64 rng(0x5CA1E);
  auto add = [&](uint64_t addr, int len) {
    if (addr >= (uint64_t{1} << 32)) return;
    probes.push_back(
        net::Prefix::containing(net::Ipv4(static_cast<uint32_t>(addr)), len));
  };
  const auto ivs = snap.routed().intervals();
  const size_t stride = std::max<size_t>(1, ivs.size() / (want / 8));
  for (size_t i = 0; i < ivs.size(); i += stride) {
    add(ivs[i].begin == 0 ? 0 : ivs[i].begin - 1, 24);
    add(ivs[i].begin, 24);
    add(ivs[i].end - 1, 32);
    add(ivs[i].end, 22);
  }
  while (probes.size() < want) {
    add(rng() % (uint64_t{1} << 32), 8 + static_cast<int>(rng() % 25));
  }
  return probes;
}

TEST(ScaleTier, FixtureHasFullTableMagnitude) {
  const ScaleFixture& fx = ScaleFixture::get();
  const size_t n = fx.config.routed_prefixes;
  // The carved prefixes coalesce across non-gap neighbours; with the
  // default gap_rate the interval count stays within a small factor of the
  // prefix count, and the search arrays are genuinely at scale.
  EXPECT_GE(fx.loaded->routed().interval_count(), n / 4);
  EXPECT_GE(fx.loaded->rov().segment_count(), n / 4);
  EXPECT_TRUE(fx.loaded->routed().has_fast_index());
  EXPECT_TRUE(fx.loaded->rov().has_fast_index());
  EXPECT_TRUE(fx.loaded->drop().has_fast_index());
  EXPECT_GT(fx.loaded->drop().segment_count(), 1000u);
  if (fx.compiled) {
    EXPECT_EQ(fx.compiled->routed().interval_count(),
              fx.loaded->routed().interval_count());
  }
}

TEST(ScaleTier, DlsRoundTripIsByteIdentical) {
  const ScaleFixture& fx = ScaleFixture::get();
  const std::string file_bytes = read_file(fx.path);
  ASSERT_FALSE(file_bytes.empty());
  // Loading a full-table file and re-serializing the view reproduces the
  // bytes exactly: the Eytzinger overlay never leaks into the format.
  EXPECT_EQ(svc::serialize_snapshot(*fx.loaded), file_bytes);
  if (fx.compiled) {
    EXPECT_EQ(svc::serialize_snapshot(*fx.compiled), file_bytes);
  }
}

TEST(ScaleTier, BatchedAnswersMatchReferenceAtScale) {
  const ScaleFixture& fx = ScaleFixture::get();
  const svc::Snapshot& snap = *fx.loaded;
  const std::vector<net::Prefix> probes = probe_corpus(snap, 40'000);
  std::vector<uint8_t> fields(probes.size());
  std::mt19937_64 rng(0xF1E1D);
  for (uint8_t& f : fields) {
    f = static_cast<uint8_t>(1 + rng() % svc::kAllFields);
  }
  std::vector<svc::Answer> batched(probes.size());
  snap.lookup_batch(probes, fields, batched);
  for (size_t i = 0; i < probes.size(); ++i) {
    const svc::Answer ref = snap.lookup_reference(probes[i], fields[i]);
    ASSERT_EQ(batched[i], ref) << probes[i].to_string();
    ASSERT_EQ(snap.lookup(probes[i], fields[i]), ref) << probes[i].to_string();
  }
  if (fx.compiled) {
    // Compiled and loaded snapshots are distinct structures (owned arrays
    // vs mmap views); they must agree answer for answer.
    std::vector<svc::Answer> from_compiled(probes.size());
    fx.compiled->lookup_batch(probes, fields, from_compiled);
    EXPECT_EQ(from_compiled, batched);
  }
}

TEST(ScaleTier, ServerFramesAreByteIdenticalAcrossThreadCounts) {
  const ScaleFixture& fx = ScaleFixture::get();
  const std::vector<net::Prefix> probes = probe_corpus(*fx.loaded, 16'384);
  std::vector<std::string> requests;
  for (size_t begin = 0; begin < probes.size(); begin += svc::kMaxBatch) {
    std::vector<svc::Query> frame;
    for (size_t i = begin;
         i < std::min(probes.size(), begin + svc::kMaxBatch); ++i) {
      frame.push_back(
          svc::Query{fx.loaded->date(), probes[i], svc::kAllFields});
    }
    requests.push_back(svc::encode_query_request(frame));
  }
  svc::Server sequential(fx.loaded);
  util::ThreadPool pool(4);
  svc::Server pooled(fx.loaded, &pool);
  for (const std::string& req : requests) {
    const std::string a = sequential.serve(req);
    const std::string b = pooled.serve(req);
    ASSERT_EQ(a, b);
    // Every wire answer equals the reference path's answer.
    const svc::QueryResponse decoded =
        svc::decode_query_response(svc::frame_payload(a));
    const std::vector<svc::Query> queries =
        svc::decode_query_request(svc::frame_payload(req));
    ASSERT_EQ(decoded.answers.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(decoded.answers[i],
                fx.loaded->lookup_reference(queries[i].prefix, svc::kAllFields))
          << queries[i].prefix.to_string();
    }
  }
}

TEST(ScaleTier, DeltaRoundTripsMillionElementSegments) {
  const ScaleFixture& fx = ScaleFixture::get();
  // A day-over-day delta at full-table scale: perturb the loaded arrays
  // (drop some intervals, keep the bulk) into a second snapshot, write the
  // patch, and reload it over the base. Exercises diff_segment's u32 op
  // fields with million-element copy runs and large start offsets — the
  // satellite's truncation audit pin.
  const svc::Snapshot& base = *fx.loaded;
  std::vector<net::IntervalSet::Interval> routed(
      base.routed().intervals().begin(), base.routed().intervals().end());
  ASSERT_GT(routed.size(), 1000u);
  routed.erase(routed.begin() + static_cast<std::ptrdiff_t>(routed.size() / 2));
  routed.pop_back();
  svc::Snapshot next(
      2, base.date() + 1, base.degraded(),
      net::IntervalSet::from_sorted(routed),
      net::IntervalSet::view(base.as0().intervals()),
      net::IntervalSet::view(base.irr().intervals()),
      net::IntervalSet::view(base.allocated().intervals()),
      net::SegmentMap<svc::Snapshot::DropInfo>::view(base.drop().segments()),
      net::SegmentMap<uint8_t>::view(base.rov().segments()),
      net::SegmentMap<uint8_t>::view(base.rir().segments()));
  const std::string delta_path = fx.path + ".delta-test";
  svc::save_snapshot_delta(next, base, delta_path);
  const std::shared_ptr<const svc::Snapshot> reloaded =
      svc::load_snapshot_delta(delta_path, base, 2);
  EXPECT_EQ(svc::serialize_snapshot(*reloaded), svc::serialize_snapshot(next));
  EXPECT_TRUE(reloaded->routed().has_fast_index());
  std::filesystem::remove(delta_path);
}

TEST(ScaleTier, WireGuardsRejectOversizedCounts) {
  // Regression pins for the 32-bit audit: the u32 wire-field guard must
  // throw — not wrap — past 2^32, and the batch codec refuses frames past
  // kMaxBatch rather than truncating the u16 count.
  EXPECT_EQ(svc::detail::checked_u32((uint64_t{1} << 32) - 1, "x"),
            0xffffffffu);
  EXPECT_THROW(svc::detail::checked_u32(uint64_t{1} << 32, "x"),
               svc::SnapshotFormatError);
  std::vector<svc::Query> oversized(
      svc::kMaxBatch + 1,
      svc::Query{net::Date::from_ymd(2022, 1, 15),
                 net::Prefix::containing(net::Ipv4(0x01010100), 24),
                 svc::kAllFields});
  EXPECT_THROW(svc::encode_query_request(oversized), InvariantError);
}

}  // namespace
}  // namespace droplens
