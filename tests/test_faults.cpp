// Fault-injection round trips: every substrate parser, fed deterministically
// corrupted input, must (a) under kStrict throw a ParseError naming where,
// (b) under kLenient never throw on record-level damage, and (c) account for
// every skipped record in its ParseReport. This file is the ASan/UBSan gate
// for the ingestion layer (see README "Fault drills"):
//   cmake -B build-asan -S . -DDROPLENS_SANITIZE=address
//   cmake --build build-asan -j && ctest --test-dir build-asan -L faults
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/mrt.hpp"
#include "drop/feed.hpp"
#include "irr/rpsl.hpp"
#include "net/date.hpp"
#include "net/prefix.hpp"
#include "rir/delegation.hpp"
#include "rpki/roa_csv.hpp"
#include "rpki/rtr.hpp"
#include "sim/fault_injector.hpp"
#include "util/error.hpp"
#include "util/parse_report.hpp"

namespace droplens {
namespace {

using util::ParsePolicy;
using util::ParseReport;

// One text substrate under test: a known-clean input, its record count, and
// a uniform parse entry point returning how many records came back.
struct TextSubstrate {
  std::string name;
  std::string clean;
  size_t records;
  std::function<size_t(std::string_view, ParsePolicy, ParseReport*)> parse;
};

std::string clean_drop_feed() {
  return
      "; Spamhaus DROP List 2022-03-30\n"
      "; Expires: 2022-03-31\n"
      "1.2.3.0/24 ; SBL123456\n"
      "41.0.0.0/8\n"
      "203.0.113.0/24 ; SBL9\n";
}

std::string clean_delegation_file() {
  std::vector<rir::DelegationRecord> records;
  rir::DelegationRecord r;
  r.registry = rir::Rir::kArin;
  r.country = "US";
  r.start = net::Ipv4::parse("10.0.0.0");
  r.value = 65536;
  r.date = net::Date::parse("2010-01-01");
  r.status = rir::DelegationStatus::kAllocated;
  r.opaque_id = "ORG-1";
  records.push_back(r);
  r.start = net::Ipv4::parse("11.0.0.0");
  r.date = net::Date::parse("2012-06-15");
  r.status = rir::DelegationStatus::kAssigned;
  r.opaque_id = "ORG-2";
  records.push_back(r);
  r.start = net::Ipv4::parse("12.0.0.0");
  r.date = net::Date(0);
  r.status = rir::DelegationStatus::kAvailable;
  r.opaque_id.clear();
  records.push_back(r);
  return rir::write_delegation_file(rir::Rir::kArin,
                                    net::Date::parse("2022-03-30"), records);
}

std::string clean_roa_csv() {
  return
      "URI,ASN,IP Prefix,Max Length,Not Before,Not After\n"
      "rsync://rpki.ripe.net/repository/0.roa,AS64500,10.0.0.0/16,24,"
      "2021-01-01,never\n"
      "rsync://rpki.apnic.net/repository/1.roa,AS64501,11.0.0.0/16,16,"
      "2021-01-01,2022-01-01\n"
      "rsync://rpki.arin.net/repository/2.roa,AS64502,12.0.0.0/12,16,"
      "2020-06-01,never\n";
}

std::string clean_rpsl() {
  std::string out;
  for (int i = 0; i < 3; ++i) {
    irr::RouteObject route;
    route.prefix = net::Prefix::parse(std::to_string(20 + i) + ".0.0.0/8");
    route.origin = net::Asn(static_cast<uint32_t>(64500 + i));
    route.maintainer = "MAINT-" + std::to_string(i);
    route.org_id = "ORG-" + std::to_string(i);
    route.descr = "test route";
    route.created = net::Date::parse("2020-01-01");
    out += route.to_rpsl();
    out += '\n';  // blank separator between objects
  }
  return out;
}

std::vector<TextSubstrate> text_substrates() {
  std::vector<TextSubstrate> out;
  out.push_back({"drop-feed", clean_drop_feed(), 3,
                 [](std::string_view text, ParsePolicy p, ParseReport* r) {
                   return drop::parse_drop_feed(text, p, r).size();
                 }});
  out.push_back({"delegations", clean_delegation_file(), 3,
                 [](std::string_view text, ParsePolicy p, ParseReport* r) {
                   return rir::parse_delegation_file(text, p, r).size();
                 }});
  out.push_back({"roas-csv", clean_roa_csv(), 3,
                 [](std::string_view text, ParsePolicy p, ParseReport* r) {
                   return rpki::parse_roa_csv(text, p, r).size();
                 }});
  out.push_back({"rpsl", clean_rpsl(), 3,
                 [](std::string_view text, ParsePolicy p, ParseReport* r) {
                   return irr::parse_rpsl(text, p, r).size();
                 }});
  return out;
}

std::string clean_mrtl() {
  std::vector<bgp::Update> updates;
  for (int i = 0; i < 6; ++i) {
    updates.push_back(bgp::Update{
        net::Date(100 + i), static_cast<uint32_t>(i),
        bgp::UpdateType::kAnnounce,
        net::Prefix::parse(std::to_string(10 + i) + ".0.0.0/8"),
        bgp::AsPath{net::Asn(1), net::Asn(static_cast<uint32_t>(2 + i))}});
  }
  std::stringstream buf;
  bgp::write_mrtl(buf, updates);
  return buf.str();
}

// ---------------------------------------------------------------------------
// Text substrates x fault kinds

TEST(FaultRoundTrip, SanityCleanInputsParseCleanly) {
  for (const TextSubstrate& s : text_substrates()) {
    ParseReport report(s.name);
    EXPECT_EQ(s.parse(s.clean, ParsePolicy::kLenient, &report), s.records)
        << s.name;
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.parsed(), s.records) << s.name;
  }
}

TEST(FaultRoundTrip, GarbageLinesCostExactlyOneSkipEach) {
  constexpr int kGarbage = 4;
  for (const TextSubstrate& s : text_substrates()) {
    sim::FaultInjector inj(7);
    std::string corrupted = inj.garbage_lines(s.clean, kGarbage);

    EXPECT_THROW(s.parse(corrupted, ParsePolicy::kStrict, nullptr),
                 ParseError)
        << s.name;

    ParseReport report(s.name);
    size_t records = 0;
    EXPECT_NO_THROW(
        records = s.parse(corrupted, ParsePolicy::kLenient, &report))
        << s.name;
    EXPECT_EQ(records, s.records) << s.name;
    EXPECT_EQ(report.parsed(), s.records) << s.name;
    EXPECT_EQ(report.skipped(), static_cast<size_t>(kGarbage)) << s.name;
    ASSERT_EQ(report.diagnostics().size(), static_cast<size_t>(kGarbage));
    for (const util::ParseDiagnostic& d : report.diagnostics()) {
      EXPECT_GT(d.line, 1u) << s.name;  // line 1 (the header) is never spliced
      EXPECT_FALSE(d.message.empty()) << s.name;
    }
  }
}

TEST(FaultRoundTrip, StrictErrorsNameTheLine) {
  for (const TextSubstrate& s : text_substrates()) {
    sim::FaultInjector inj(11);
    std::string corrupted = inj.garbage_lines(s.clean, 1);
    try {
      s.parse(corrupted, ParsePolicy::kStrict, nullptr);
      FAIL() << s.name << ": strict parse accepted garbage";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << s.name << ": " << e.what();
    }
  }
}

TEST(FaultRoundTrip, DuplicateLinesNeverBreakEitherPolicy) {
  constexpr int kDups = 4;
  for (const TextSubstrate& s : text_substrates()) {
    sim::FaultInjector inj(13);
    std::string corrupted = inj.duplicate_lines(s.clean, kDups);
    // Double-written lines are well-formed, so even strict mode survives.
    size_t strict = 0;
    EXPECT_NO_THROW(strict = s.parse(corrupted, ParsePolicy::kStrict, nullptr))
        << s.name;
    ParseReport report(s.name);
    size_t lenient = s.parse(corrupted, ParsePolicy::kLenient, &report);
    EXPECT_EQ(strict, lenient) << s.name;
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GE(lenient, s.records) << s.name;
    EXPECT_LE(lenient, s.records + kDups) << s.name;
  }
}

TEST(FaultRoundTrip, TruncationNeverThrowsLenient) {
  for (const TextSubstrate& s : text_substrates()) {
    for (uint64_t seed = 1; seed <= 16; ++seed) {
      sim::FaultInjector inj(seed);
      std::string corrupted = inj.truncate(s.clean);
      ParseReport report(s.name);
      size_t records = 0;
      EXPECT_NO_THROW(
          records = s.parse(corrupted, ParsePolicy::kLenient, &report))
          << s.name << " seed " << seed;
      EXPECT_LE(records, s.records) << s.name << " seed " << seed;
      // At most the one line the cut landed on can go bad.
      EXPECT_LE(report.skipped(), 1u) << s.name << " seed " << seed;
    }
  }
}

TEST(FaultRoundTrip, CorruptHeaderSparesTheRecords) {
  for (const TextSubstrate& s : text_substrates()) {
    sim::FaultInjector inj(17);
    std::string corrupted = inj.corrupt_header(s.clean);
    ParseReport report(s.name);
    size_t records = 0;
    EXPECT_NO_THROW(
        records = s.parse(corrupted, ParsePolicy::kLenient, &report))
        << s.name;
    // Every original record lives on lines after the first, untouched.
    EXPECT_GE(records, s.records) << s.name;
  }
}

// ---------------------------------------------------------------------------
// MRTL (binary): header damage is fatal in both policies, record damage is
// recoverable in lenient mode.

TEST(FaultRoundTrip, MrtlCorruptHeaderIsFatalInBothPolicies) {
  std::string clean = clean_mrtl();
  sim::FaultInjector inj(19);
  std::string corrupted = inj.corrupt_header(clean);
  std::stringstream strict_in(corrupted);
  EXPECT_THROW(bgp::read_mrtl(strict_in, ParsePolicy::kStrict), ParseError);
  std::stringstream lenient_in(corrupted);
  ParseReport report("updates.mrtl");
  EXPECT_THROW(bgp::read_mrtl(lenient_in, ParsePolicy::kLenient, &report),
               ParseError);
}

TEST(FaultRoundTrip, MrtlDeclaredCountIsValidatedBeforeAllocating) {
  // Satellite guard: a bit-flipped count field must not drive a huge
  // allocation — the reader checks it against the bytes actually present.
  std::string clean = clean_mrtl();
  // Count is a little-endian u64 at bytes 6..13 (after magic + version).
  for (size_t i = 6; i < 14; ++i) clean[i] = static_cast<char>(0xff);
  for (ParsePolicy policy : {ParsePolicy::kStrict, ParsePolicy::kLenient}) {
    std::stringstream in(clean);
    try {
      bgp::read_mrtl(in, policy);
      FAIL() << "absurd record count accepted";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("declares"), std::string::npos)
          << e.what();
    }
  }
}

TEST(FaultRoundTrip, MrtlTruncationIsStrictFatalLenientAccounted) {
  std::string clean = clean_mrtl();
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    sim::FaultInjector inj(seed);
    std::string corrupted = inj.truncate(clean);
    {
      std::stringstream in(corrupted);
      EXPECT_THROW(bgp::read_mrtl(in, ParsePolicy::kStrict), ParseError)
          << "seed " << seed;
    }
    std::stringstream in(corrupted);
    ParseReport report("updates.mrtl");
    try {
      std::vector<bgp::Update> updates =
          bgp::read_mrtl(in, ParsePolicy::kLenient, &report);
      // Salvaged: everything that parsed plus one diagnostic for the rest.
      EXPECT_LT(updates.size(), 6u) << "seed " << seed;
      EXPECT_EQ(report.parsed(), updates.size()) << "seed " << seed;
      EXPECT_EQ(report.skipped(), 1u) << "seed " << seed;
      EXPECT_NE(report.diagnostics().front().message.find("dropped remaining"),
                std::string::npos)
          << "seed " << seed;
    } catch (const ParseError&) {
      // Also fine: the cut landed in (or invalidated) the header, which is
      // unusable in any policy — the caller marks the day unavailable.
    }
  }
}

TEST(FaultRoundTrip, MrtlBitFlipsNeverEscapeParseError) {
  std::string clean = clean_mrtl();
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    sim::FaultInjector inj(seed);
    std::string corrupted = inj.flip_bits(clean, 8);
    std::stringstream in(corrupted);
    ParseReport report("updates.mrtl");
    try {
      std::vector<bgp::Update> updates =
          bgp::read_mrtl(in, ParsePolicy::kLenient, &report);
      EXPECT_LE(updates.size(), 6u) << "seed " << seed;
      EXPECT_EQ(report.parsed(), updates.size()) << "seed " << seed;
    } catch (const ParseError&) {
      // Header flips are fatal by design; anything else must not escape.
    } catch (const std::exception& e) {
      FAIL() << "non-ParseError exception on seed " << seed << ": "
             << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Injector mechanics

TEST(FaultInjector, SameSeedSameFaults) {
  std::string input = clean_roa_csv();
  for (sim::FaultKind kind : sim::kAllFaultKinds) {
    sim::FaultInjector a(99), b(99);
    EXPECT_EQ(a.apply(kind, input), b.apply(kind, input))
        << sim::to_string(kind);
  }
  sim::FaultInjector a(1), b(2);
  EXPECT_NE(a.garbage_lines(input), b.garbage_lines(input));
}

TEST(FaultInjector, DropDaysRemovesAndReportsSorted) {
  sim::FaultInjector::DailyArchive days;
  for (int i = 0; i < 10; ++i) {
    days.emplace_back(net::Date(1000 + i), "snapshot " + std::to_string(i));
  }
  sim::FaultInjector inj(5);
  std::vector<net::Date> dropped = inj.drop_days(days, 3);
  ASSERT_EQ(dropped.size(), 3u);
  EXPECT_EQ(days.size(), 7u);
  EXPECT_TRUE(std::is_sorted(dropped.begin(), dropped.end()));
  for (const auto& [date, text] : days) {
    for (net::Date d : dropped) EXPECT_NE(date, d);
  }
  // Dropping more days than exist empties the archive without looping.
  std::vector<net::Date> rest = inj.drop_days(days, 100);
  EXPECT_EQ(rest.size(), 7u);
  EXPECT_TRUE(days.empty());
}

TEST(FaultInjector, ShuffleDaysPermutesWithoutLoss) {
  sim::FaultInjector::DailyArchive days;
  for (int i = 0; i < 12; ++i) {
    days.emplace_back(net::Date(2000 + i), std::to_string(i));
  }
  sim::FaultInjector::DailyArchive original = days;
  sim::FaultInjector inj(21);
  inj.shuffle_days(days);
  EXPECT_NE(days, original);  // seed 21 does move something
  std::map<net::Date, std::string> a(days.begin(), days.end());
  std::map<net::Date, std::string> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(ParseReport, CapsDiagnosticsButKeepsCounting) {
  ParseReport report("big.feed");
  for (size_t i = 0; i < 3 * ParseReport::kMaxDiagnostics; ++i) {
    report.add_error(i + 1, "bad");
  }
  EXPECT_EQ(report.diagnostics().size(), ParseReport::kMaxDiagnostics);
  EXPECT_EQ(report.skipped(), 3 * ParseReport::kMaxDiagnostics);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("big.feed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RTR session recovery (tentpole part 4): cache errors resync, not abort.

TEST(RtrRecovery, ErrorReportResyncsInsteadOfThrowing) {
  rpki::RtrServer server(11);
  server.update({rpki::Vrp{net::Prefix::parse("10.0.0.0/16"), 16,
                           net::Asn(1)}});
  rpki::RtrClient client;
  client.consume(server.handle(rpki::parse_pdus(client.poll())[0]));
  ASSERT_EQ(client.table_size(), 1u);
  ASSERT_FALSE(client.needs_resync());

  // The cache answers a malformed query with an Error Report. The client
  // must drop the session and come back with a Reset Query, not throw.
  rpki::Pdu bogus;
  bogus.type = rpki::PduType::kEndOfData;
  std::string error_bytes = server.handle(bogus);
  EXPECT_NO_THROW(client.consume(error_bytes));
  EXPECT_TRUE(client.needs_resync());
  EXPECT_EQ(client.table_size(), 0u);
  EXPECT_NE(client.last_error().find("error 3"), std::string::npos)
      << client.last_error();

  std::vector<rpki::Pdu> next = rpki::parse_pdus(client.poll());
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].type, rpki::PduType::kResetQuery);
  client.consume(server.handle(next[0]));
  EXPECT_EQ(client.table_size(), 1u);
  EXPECT_FALSE(client.needs_resync());  // End Of Data clears the budget
  EXPECT_EQ(client.pending_recoveries(), 0);
}

TEST(RtrRecovery, RetryBudgetBoundsConsecutiveErrors) {
  rpki::Pdu err;
  err.type = rpki::PduType::kErrorReport;
  err.error_code = 2;
  err.error_text = "no data available";
  std::string wire = rpki::serialize_pdu(err);

  rpki::RtrClient client;
  for (int i = 1; i <= rpki::RtrClient::kMaxRecoveries; ++i) {
    EXPECT_NO_THROW(client.consume(wire)) << "error " << i;
    EXPECT_EQ(client.pending_recoveries(), i);
  }
  try {
    client.consume(wire);
    FAIL() << "error past the retry budget did not throw";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("giving up"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("no data available"),
              std::string::npos)
        << e.what();
  }
}

TEST(RtrRecovery, SuccessfulSyncResetsTheBudget) {
  rpki::RtrServer server(3);
  server.update({rpki::Vrp{net::Prefix::parse("10.0.0.0/16"), 16,
                           net::Asn(1)}});
  rpki::Pdu err;
  err.type = rpki::PduType::kErrorReport;
  err.error_code = 1;
  err.error_text = "internal error";
  std::string wire = rpki::serialize_pdu(err);

  rpki::RtrClient client;
  // Alternate error / successful resync well past the budget: each completed
  // sync must clear the counter, so this never throws.
  for (int round = 0; round < 3 * rpki::RtrClient::kMaxRecoveries; ++round) {
    EXPECT_NO_THROW(client.consume(wire)) << "round " << round;
    client.consume(server.handle(rpki::parse_pdus(client.poll())[0]));
    EXPECT_EQ(client.pending_recoveries(), 0) << "round " << round;
    EXPECT_EQ(client.table_size(), 1u) << "round " << round;
  }
}

}  // namespace
}  // namespace droplens
