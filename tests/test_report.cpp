#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "sim/generator.hpp"

namespace droplens::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  Study study() const {
    return Study{world_->registry,    world_->fleet, world_->irr,
                 world_->roas,        world_->drop,  world_->sbl,
                 config_->window_begin, config_->window_end};
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* ReportTest::config_ = nullptr;
sim::World* ReportTest::world_ = nullptr;

TEST_F(ReportTest, RendersAllSections) {
  std::ostringstream out;
  Study s = study();
  int sections = write_report(out, s);
  EXPECT_EQ(sections, 6);
  std::string text = out.str();
  for (const char* marker :
       {"# DROP-lens study report", "## The DROP list",
        "## Effects of blocklisting", "## Effectiveness of the IRR",
        "## Effectiveness of RPKI", "## AS0 policies", "## Extensions",
        "RPKI-VALID HIJACK: 132.255.0.0/22"}) {
    EXPECT_NE(text.find(marker), std::string::npos) << marker;
  }
}

TEST_F(ReportTest, OptionsControlContent) {
  Study s = study();
  ReportOptions no_ext;
  no_ext.include_extensions = false;
  no_ext.include_case_timeline = false;
  std::ostringstream out;
  int sections = write_report(out, s, no_ext);
  EXPECT_EQ(sections, 5);
  std::string text = out.str();
  EXPECT_EQ(text.find("## Extensions"), std::string::npos);
  EXPECT_EQ(text.find("50509 34665 263692"), std::string::npos);

  ReportOptions with_series;
  with_series.include_series = true;
  std::ostringstream out2;
  write_report(out2, s, with_series);
  EXPECT_NE(out2.str().find("date,signed,pct_routed"), std::string::npos);
}

TEST_F(ReportTest, ReportIsDeterministic) {
  Study s = study();
  std::ostringstream a, b;
  write_report(a, s);
  write_report(b, s);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace droplens::core
