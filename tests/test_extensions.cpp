// Extension analyses: maxLength vulnerability, the defense matrix, and
// serial-hijacker profiling — crafted unit cases plus small-world checks.
#include <gtest/gtest.h>

#include "core/alarms.hpp"
#include "core/defenses.hpp"
#include "core/irr_whatif.hpp"
#include "core/maxlength.hpp"
#include "core/serial_hijackers.hpp"
#include "sim/generator.hpp"

namespace droplens::core {
namespace {

net::Date D(const char* s) { return net::Date::parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

/// A hand-built micro-world for targeted defense/maxLength checks.
struct MicroWorld {
  rir::Registry registry;
  bgp::CollectorFleet fleet;
  irr::Database irr;
  rpki::RoaArchive roas;
  drop::DropList drop;
  drop::SblDatabase sbl;

  Study study() {
    return Study{registry, fleet,        irr,
                 roas,     drop,         sbl,
                 D("2019-06-05"), D("2022-03-30")};
  }

  MicroWorld() {
    registry.administer(rir::Rir::kRipe, P("185.0.0.0/8"));
    uint32_t c = fleet.add_collector("rv");
    fleet.add_peer(c, net::Asn(9000));
  }
};

TEST(MaxLength, RoaWithoutMaxLengthIsNotVulnerable) {
  MicroWorld w;
  w.roas.publish(rpki::Roa(P("185.1.0.0/16"), net::Asn(1), rpki::Tal::kRipe),
                 D("2020-01-01"));
  Study s = w.study();
  MaxLengthResult r = analyze_maxlength(s, D("2021-01-01"));
  EXPECT_EQ(r.roas_total, 1);
  EXPECT_EQ(r.roas_with_maxlength, 0);
  EXPECT_EQ(r.vulnerable, 0);
}

TEST(MaxLength, UnannouncedSubPrefixesAreVulnerable) {
  MicroWorld w;
  rpki::Roa roa(P("185.1.0.0/16"), net::Asn(1), rpki::Tal::kRipe, 18);
  w.roas.publish(roa, D("2020-01-01"));
  // Owner announces only the covering /16: every /18 wins LPM over it.
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(2), net::Asn(1)},
                   {D("2020-01-01"), net::DateRange::unbounded()});
  Study s = w.study();
  EXPECT_TRUE(maxlength_vulnerable(s, roa, D("2021-01-01")));
  MaxLengthResult r = analyze_maxlength(s, D("2021-01-01"));
  EXPECT_EQ(r.vulnerable, 1);
  EXPECT_TRUE(r.vulnerable_space.covers(P("185.1.0.0/16")));
}

TEST(MaxLength, FullyAnnouncedAtMaxLengthIsProtected) {
  MicroWorld w;
  rpki::Roa roa(P("185.1.0.0/16"), net::Asn(1), rpki::Tal::kRipe, 17);
  w.roas.publish(roa, D("2020-01-01"));
  // The owner announces BOTH /17 halves: no more-specific room is left.
  for (const char* sub : {"185.1.0.0/17", "185.1.128.0/17"}) {
    w.fleet.announce(P(sub), bgp::AsPath{net::Asn(2), net::Asn(1)},
                     {D("2020-01-01"), net::DateRange::unbounded()});
  }
  Study s = w.study();
  EXPECT_FALSE(maxlength_vulnerable(s, roa, D("2021-01-01")));
}

TEST(MaxLength, PartialCoverageIsStillVulnerable) {
  MicroWorld w;
  rpki::Roa roa(P("185.1.0.0/16"), net::Asn(1), rpki::Tal::kRipe, 17);
  w.roas.publish(roa, D("2020-01-01"));
  w.fleet.announce(P("185.1.0.0/17"), bgp::AsPath{net::Asn(2), net::Asn(1)},
                   {D("2020-01-01"), net::DateRange::unbounded()});
  Study s = w.study();
  EXPECT_TRUE(maxlength_vulnerable(s, roa, D("2021-01-01")));
}

TEST(MaxLength, As0RoaIsNeverVulnerable) {
  MicroWorld w;
  rpki::Roa roa(P("185.1.0.0/16"), net::Asn::as0(), rpki::Tal::kRipe, 24);
  w.roas.publish(roa, D("2020-01-01"));
  Study s = w.study();
  EXPECT_FALSE(maxlength_vulnerable(s, roa, D("2021-01-01")));
}

// --- Defense matrix on the small world ------------------------------------

class ExtensionWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
    study_ = new Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
    index_ = new DropIndex(DropIndex::build(*study_));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete study_;
    delete world_;
    delete config_;
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
  static Study* study_;
  static DropIndex* index_;
};

sim::ScenarioConfig* ExtensionWorldTest::config_ = nullptr;
sim::World* ExtensionWorldTest::world_ = nullptr;
Study* ExtensionWorldTest::study_ = nullptr;
DropIndex* ExtensionWorldTest::index_ = nullptr;

TEST_F(ExtensionWorldTest, DefenseMatrixShape) {
  DefenseMatrixResult r = analyze_defenses(*study_, *index_);
  ASSERT_GT(r.total(), 0);
  size_t ua = static_cast<size_t>(HijackKind::kUnallocated);
  // Every unallocated hijack is caught by enforced RIR AS0 and nothing
  // in the ROV column (the space is unsigned under production TALs).
  EXPECT_EQ(r.blocked_by_kind[ua][static_cast<size_t>(Defense::kRovRirAs0)],
            r.events_by_kind[ua]);
  EXPECT_EQ(r.blocked_by_kind[ua][static_cast<size_t>(Defense::kRov)], 0);
  EXPECT_GT(r.events_by_kind[ua], 0);
  // BGPsec catches every forged-origin hijack.
  size_t fo = static_cast<size_t>(HijackKind::kForgedOrigin);
  EXPECT_EQ(r.blocked_by_kind[fo][static_cast<size_t>(Defense::kBgpsec)],
            r.events_by_kind[fo]);
  // ...but origin squats with the attacker's own AS pass everything except
  // allocation-based policies.
  size_t sq = static_cast<size_t>(HijackKind::kOriginSquat);
  EXPECT_EQ(r.blocked_by_kind[sq][static_cast<size_t>(Defense::kBgpsec)], 0);
  // The AS0-only gap is non-empty — the paper's conclusion.
  EXPECT_GT(r.unstoppable_without_as0, 0);
}

TEST_F(ExtensionWorldTest, DefenseVerdictsAreMonotone) {
  DefenseMatrixResult r = analyze_defenses(*study_, *index_);
  for (const HijackEvent& e : r.events) {
    // Anything ROV blocks, the ROV-superset defenses block too.
    if (e.blocked[static_cast<size_t>(Defense::kRov)]) {
      EXPECT_TRUE(e.blocked[static_cast<size_t>(Defense::kRovOperatorAs0)]);
      EXPECT_TRUE(e.blocked[static_cast<size_t>(Defense::kRovRirAs0)]);
      EXPECT_TRUE(e.blocked[static_cast<size_t>(Defense::kBgpsec)]);
      EXPECT_TRUE(e.blocked[static_cast<size_t>(Defense::kPathEnd)]);
    }
  }
}

TEST_F(ExtensionWorldTest, CaseStudyHijackEvadesRovButNotBgpsec) {
  DefenseMatrixResult r = analyze_defenses(*study_, *index_);
  const HijackEvent* case_event = nullptr;
  for (const HijackEvent& e : r.events) {
    if (e.prefix == world_->truth.case_study_prefix) case_event = &e;
  }
  ASSERT_NE(case_event, nullptr);
  EXPECT_EQ(case_event->kind, HijackKind::kForgedOrigin);
  EXPECT_FALSE(case_event->blocked[static_cast<size_t>(Defense::kRov)]);
  EXPECT_TRUE(
      case_event->blocked[static_cast<size_t>(Defense::kRovOperatorAs0)]);
  EXPECT_TRUE(case_event->blocked[static_cast<size_t>(Defense::kPathEnd)]);
  EXPECT_TRUE(case_event->blocked[static_cast<size_t>(Defense::kBgpsec)]);
}

TEST_F(ExtensionWorldTest, MaxLengthAnalysisRunsOnSmallWorld) {
  MaxLengthResult r = analyze_maxlength(*study_, config_->window_end);
  EXPECT_GT(r.roas_total, 0);
  EXPECT_GT(r.roas_with_maxlength, 0);
  EXPECT_LE(r.vulnerable, r.roas_with_maxlength);
  EXPECT_GT(r.vulnerable, 0);
}

TEST_F(ExtensionWorldTest, SerialProfilerDoesNotFlagLegitOperators) {
  SerialHijackerResult r = analyze_serial_hijackers(*study_, *index_);
  // Small world: too few prefixes per hijacker ASN to flag, but crucially
  // no legitimate operator may be flagged either.
  for (const OriginProfile& p : r.flagged) {
    bool planted = p.asn.value() >= 61000 && p.asn.value() <= 61100;
    EXPECT_TRUE(planted) << p.asn.to_string();
  }
  EXPECT_GT(r.origins_profiled, 1000);
  EXPECT_GT(r.origins_with_drop_prefix, 10);
}

TEST(Alarms, NewOriginAndMoasDetection) {
  MicroWorld w;
  // Baseline: owner announces pre-window.
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(2), net::Asn(1)},
                   {D("2015-01-01"), net::DateRange::unbounded()});
  // In-window: a different origin appears while the owner still announces
  // (MOAS + new-origin).
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(9), net::Asn(6)},
                   {D("2020-01-01"), D("2020-06-01")});
  Study s = w.study();
  DropIndex index = DropIndex::build(s);
  AlarmResult r = analyze_alarms(s, index);
  int new_origin = 0, moas = 0;
  for (const Alarm& a : r.alarms) {
    if (a.kind == AlarmKind::kNewOrigin) ++new_origin;
    if (a.kind == AlarmKind::kMoas) ++moas;
  }
  EXPECT_EQ(new_origin, 1);
  EXPECT_EQ(moas, 1);
}

TEST(Alarms, HistoricOriginReuseIsSilent) {
  MicroWorld w;
  // Owner announced years ago, withdrew, attacker re-uses the same origin.
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(2), net::Asn(1)},
                   {D("2015-01-01"), D("2018-01-01")});
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(9), net::Asn(1)},
                   {D("2020-01-01"), net::DateRange::unbounded()});
  Study s = w.study();
  DropIndex index = DropIndex::build(s);
  AlarmResult r = analyze_alarms(s, index);
  EXPECT_TRUE(r.alarms.empty());
}

TEST(Alarms, NewSubPrefixOfBaselineRoute) {
  MicroWorld w;
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(2), net::Asn(1)},
                   {D("2015-01-01"), net::DateRange::unbounded()});
  w.fleet.announce(P("185.1.7.0/24"), bgp::AsPath{net::Asn(9), net::Asn(6)},
                   {D("2020-01-01"), net::DateRange::unbounded()});
  Study s = w.study();
  DropIndex index = DropIndex::build(s);
  AlarmResult r = analyze_alarms(s, index);
  bool sub = false;
  for (const Alarm& a : r.alarms) {
    if (a.kind == AlarmKind::kNewSubPrefix) {
      sub = true;
      EXPECT_EQ(a.monitored, P("185.1.0.0/16"));
      EXPECT_EQ(a.prefix, P("185.1.7.0/24"));
    }
  }
  EXPECT_TRUE(sub);
}

TEST(Alarms, UnmonitoredSpaceIsSilent) {
  MicroWorld w;
  // First-ever announcement of abandoned space inside the window: no
  // baseline, no historic origin -> nothing to alarm on.
  w.fleet.announce(P("185.1.0.0/16"), bgp::AsPath{net::Asn(9), net::Asn(6)},
                   {D("2020-01-01"), net::DateRange::unbounded()});
  Study s = w.study();
  DropIndex index = DropIndex::build(s);
  AlarmResult r = analyze_alarms(s, index);
  EXPECT_TRUE(r.alarms.empty());
}

TEST_F(ExtensionWorldTest, AlarmCoverageIsPartial) {
  AlarmResult r = analyze_alarms(*study_, *index_);
  EXPECT_GT(r.drop_hijacks_total, 0);
  EXPECT_GT(r.drop_hijacks_stealthy, 0);  // the paper's stealthy hijacks
  EXPECT_EQ(r.drop_hijacks_alarmed + r.drop_hijacks_stealthy,
            r.drop_hijacks_total);
  // The case-study prefix re-used the ROA origin: it must be stealthy.
  for (const Alarm& a : r.alarms) {
    EXPECT_NE(a.prefix, world_->truth.case_study_prefix);
  }
}

TEST(IrrWhatIf, HolderAuthorizationRules) {
  MicroWorld w;
  w.registry.allocate(P("185.1.0.0/16"), rir::Rir::kRipe, "ORG-GOOD",
                      D("2010-01-01"));
  irr::AuthorizationCheck auth = holder_authorization(w.registry);
  irr::RouteObject obj;
  obj.prefix = P("185.1.0.0/16");
  obj.origin = net::Asn(1);
  obj.org_id = "ORG-GOOD";
  obj.created = D("2020-01-01");
  EXPECT_TRUE(auth(obj));
  obj.org_id = "ORG-EVIL";
  EXPECT_FALSE(auth(obj));
  obj.org_id = "ORG-GOOD";
  obj.prefix = P("185.2.0.0/16");  // unallocated -> no holder -> reject
  EXPECT_FALSE(auth(obj));
}

TEST_F(ExtensionWorldTest, IrrWhatIfRejectsForgeryAcceptsFraud) {
  IrrWhatIfResult r = analyze_irr_whatif(*study_);
  EXPECT_EQ(r.accepted + r.rejected, r.registrations_replayed);
  // Every forged §5 object falls to the holder check...
  EXPECT_EQ(r.rejected_forged, config_->forged_irr_hijacks);
  // ...but the fraudulently *allocated* incident objects pass.
  EXPECT_EQ(r.accepted_incident, config_->afrinic_incident_prefixes);
  // Including the route object for unallocated space (no holder at all).
  bool bogon_rejected = false;
  for (const irr::RouteObject& o : r.rejected_objects) {
    if (o.org_id == "ORG-BOGON-REG") bogon_rejected = true;
  }
  EXPECT_TRUE(bogon_rejected);
}

}  // namespace
}  // namespace droplens::core
