// Protocol robustness: the service must answer hostile bytes with an error
// frame — never throw out of serve(), never crash, never allocate anything
// a 4-byte length field promised but the wire didn't deliver. Modeled on
// test_parser_fuzz.cpp: deterministic seeds, ParseError-or-success contract
// for the decoders, and mutation of valid frames (truncation, bit flips,
// declared-count vs actual-bytes mismatches).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/drop_index.hpp"
#include "sim/rng.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "util/error.hpp"

namespace droplens {
namespace {

// An empty world is enough: every decode path runs before any lookup.
struct EmptyWorld {
  rir::Registry registry;
  bgp::CollectorFleet fleet;
  irr::Database irr;
  rpki::RoaArchive roas;
  drop::DropList drop;
  drop::SblDatabase sbl;
};

const net::Date kDate = net::Date(18000);

std::shared_ptr<const svc::Snapshot> empty_snapshot() {
  static EmptyWorld* world = new EmptyWorld;
  core::Study study{world->registry, world->fleet, world->irr,
                    world->roas,     world->drop,  world->sbl,
                    kDate,           kDate + 1};
  core::DropIndex index = core::DropIndex::build(study);
  return svc::compile_snapshot(study, index, kDate, 1);
}

std::vector<svc::Query> random_batch(sim::Rng& rng, size_t max_queries) {
  std::vector<svc::Query> batch(rng.below(max_queries + 1));
  for (svc::Query& q : batch) {
    q.date = net::Date(static_cast<int32_t>(rng.below(40000)));
    q.prefix = net::Prefix::containing(
        net::Ipv4(static_cast<uint32_t>(rng.below(uint64_t{1} << 32))),
        static_cast<int>(rng.below(33)));
    q.fields = static_cast<uint8_t>(rng.below(256));
  }
  return batch;
}

/// serve() must return a decodable frame for ANY input and never throw.
void assert_served(svc::Server& server, const std::string& input) {
  std::string response;
  try {
    response = server.serve(input);
  } catch (const std::exception& e) {
    FAIL() << "serve() threw: " << e.what();
  }
  ASSERT_EQ(svc::frame_size(response), response.size());
  (void)svc::decode_header(response);
}

TEST(ServiceFuzz, FrameSizeOnRandomBytesNeverMisbehaves) {
  sim::Rng rng(101);
  for (int round = 0; round < 4000; ++round) {
    size_t len = rng.below(64);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.below(256));
    try {
      size_t n = svc::frame_size(bytes);
      EXPECT_TRUE(n == 0 || n <= svc::kHeaderSize + svc::kMaxPayload);
    } catch (const ParseError&) {
      // the transport's cue to cut the connection
    } catch (const std::exception& e) {
      FAIL() << "non-ParseError exception: " << e.what();
    }
  }
}

TEST(ServiceFuzz, ServeSurvivesRandomBytes) {
  svc::Server server(empty_snapshot());
  sim::Rng rng(102);
  for (int round = 0; round < 2000; ++round) {
    size_t len = rng.below(200);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.below(256));
    assert_served(server, bytes);
  }
  EXPECT_GT(server.stats().malformed, 0u);
}

TEST(ServiceFuzz, TruncatedFramesAreMalformedNotFatal) {
  svc::Server server(empty_snapshot());
  sim::Rng rng(103);
  for (int round = 0; round < 400; ++round) {
    std::string frame = svc::encode_query_request(random_batch(rng, 40));
    // Every strictly-shorter head of a valid frame.
    size_t cut = rng.below(frame.size());
    assert_served(server, frame.substr(0, cut));
  }
  svc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.malformed, stats.requests);  // nothing truncated parses
}

TEST(ServiceFuzz, BitFlippedFramesNeverEscapeAsExceptions) {
  svc::Server server(empty_snapshot());
  sim::Rng rng(104);
  for (int round = 0; round < 1500; ++round) {
    std::string frame = svc::encode_query_request(random_batch(rng, 30));
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.below(frame.size());
      frame[pos] = static_cast<char>(
          static_cast<uint8_t>(frame[pos]) ^ (uint8_t{1} << rng.below(8)));
    }
    assert_served(server, frame);
  }
}

TEST(ServiceFuzz, DeclaredCountMismatchesAreRejectedBeforeAllocation) {
  svc::Server server(empty_snapshot());
  sim::Rng rng(105);
  for (int round = 0; round < 500; ++round) {
    std::string frame = svc::encode_query_request(random_batch(rng, 20));
    // Patch the count field (first two payload bytes) to disagree with the
    // bytes actually present — including counts near kMaxBatch that would
    // reserve megabytes if trusted.
    uint16_t bogus = static_cast<uint16_t>(rng.below(svc::kMaxBatch + 1));
    frame[svc::kHeaderSize] = static_cast<char>(bogus & 0xff);
    frame[svc::kHeaderSize + 1] = static_cast<char>(bogus >> 8);
    size_t declared_bytes = 2 + size_t{bogus} * 10;
    if (declared_bytes == frame.size() - svc::kHeaderSize) continue;
    std::string response;
    EXPECT_NO_THROW(response = server.serve(frame));
    EXPECT_EQ(svc::decode_header(response).type, svc::FrameType::kError);
  }
}

TEST(ServiceFuzz, OversizedDeclarationsAreCutNotBuffered) {
  // payload_len beyond the cap: frame_size must throw (the transport drops
  // the connection) rather than report a gigabyte-sized frame to wait for.
  std::string header = "DL";
  header += '\x01';
  header += '\x01';
  for (uint32_t declared :
       {static_cast<uint32_t>(svc::kMaxPayload + 1), uint32_t{0x7fffffff},
        uint32_t{0xffffffff}}) {
    std::string frame = header;
    frame += static_cast<char>(declared & 0xff);
    frame += static_cast<char>((declared >> 8) & 0xff);
    frame += static_cast<char>((declared >> 16) & 0xff);
    frame += static_cast<char>((declared >> 24) & 0xff);
    EXPECT_THROW(svc::frame_size(frame), ParseError) << declared;
    svc::Server server(empty_snapshot());
    assert_served(server, frame);
    EXPECT_EQ(server.stats().malformed, 1u);
  }
}

TEST(ServiceFuzz, ClientDecodersHoldTheSameContract) {
  sim::Rng rng(106);
  for (int round = 0; round < 3000; ++round) {
    size_t len = rng.below(120);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.below(256));
    for (int which = 0; which < 3; ++which) {
      try {
        switch (which) {
          case 0:
            (void)svc::decode_query_request(bytes);
            break;
          case 1:
            (void)svc::decode_query_response(bytes);
            break;
          default:
            (void)svc::decode_stats_response(bytes);
        }
      } catch (const ParseError&) {
        // expected for malformed input
      } catch (const std::exception& e) {
        FAIL() << "non-ParseError exception: " << e.what();
      }
    }
  }
}

TEST(ServiceFuzz, RoundTripsSurviveMutationOfEveryByte) {
  // Exhaustive single-byte corruption of one representative frame.
  svc::Server server(empty_snapshot());
  std::vector<svc::Query> batch = {
      svc::Query{kDate, net::Prefix::parse("10.0.0.0/8"), svc::kAllFields},
      svc::Query{kDate, net::Prefix::parse("192.0.2.0/24"), 0x05},
  };
  std::string frame = svc::encode_query_request(batch);
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    for (int delta : {1, 0x80}) {
      std::string mutated = frame;
      mutated[pos] = static_cast<char>(
          static_cast<uint8_t>(mutated[pos]) ^ static_cast<uint8_t>(delta));
      assert_served(server, mutated);
    }
  }
}

}  // namespace
}  // namespace droplens
