#include <gtest/gtest.h>

#include "rpki/archive.hpp"
#include "rpki/roa.hpp"
#include "rpki/tal.hpp"
#include "util/error.hpp"

namespace droplens::rpki {
namespace {

net::Date D(int d) { return net::Date(d); }
net::Asn A(uint32_t a) { return net::Asn(a); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(Roa, MaxLengthDefaultsToPrefixLength) {
  Roa roa(P("10.0.0.0/16"), A(100), Tal::kRipe);
  EXPECT_EQ(roa.max_length, 16);
  EXPECT_TRUE(roa.matches(P("10.0.0.0/16"), A(100)));
  EXPECT_FALSE(roa.matches(P("10.0.0.0/17"), A(100)));  // too specific
  EXPECT_FALSE(roa.matches(P("10.0.0.0/16"), A(200)));  // wrong origin
  EXPECT_FALSE(roa.matches(P("11.0.0.0/16"), A(100)));  // not covered
}

TEST(Roa, MaxLengthAllowsMoreSpecifics) {
  Roa roa(P("10.0.0.0/16"), A(100), Tal::kRipe, 24);
  EXPECT_TRUE(roa.matches(P("10.0.3.0/24"), A(100)));
  EXPECT_FALSE(roa.matches(P("10.0.3.0/25"), A(100)));
}

TEST(Roa, MaxLengthValidation) {
  EXPECT_THROW(Roa(P("10.0.0.0/16"), A(1), Tal::kRipe, 8), InvariantError);
  EXPECT_THROW(Roa(P("10.0.0.0/16"), A(1), Tal::kRipe, 33), InvariantError);
}

TEST(Roa, As0NeverMatches) {
  Roa roa(P("10.0.0.0/16"), net::Asn::as0(), Tal::kLacnic, 24);
  EXPECT_TRUE(roa.is_as0());
  EXPECT_FALSE(roa.matches(P("10.0.0.0/16"), net::Asn::as0()));
  EXPECT_FALSE(roa.matches(P("10.0.0.0/16"), A(100)));
}

TEST(Validation, ThreeStates) {
  std::vector<Roa> covering;
  EXPECT_EQ(validate(covering, P("10.0.0.0/16"), A(1)),
            Validity::kNotFound);
  covering.push_back(Roa(P("10.0.0.0/8"), A(1), Tal::kRipe, 16));
  EXPECT_EQ(validate(covering, P("10.0.0.0/16"), A(1)), Validity::kValid);
  EXPECT_EQ(validate(covering, P("10.0.0.0/16"), A(2)), Validity::kInvalid);
}

TEST(Validation, As0MakesCoveredInvalid) {
  std::vector<Roa> covering = {
      Roa(P("10.0.0.0/8"), net::Asn::as0(), Tal::kApnicAs0)};
  EXPECT_EQ(validate(covering, P("10.2.0.0/16"), A(1)), Validity::kInvalid);
}

TEST(Validation, AnyMatchingRoaWins) {
  std::vector<Roa> covering = {
      Roa(P("10.0.0.0/16"), A(1), Tal::kRipe),
      Roa(P("10.0.0.0/16"), A(2), Tal::kRipe),
  };
  EXPECT_EQ(validate(covering, P("10.0.0.0/16"), A(2)), Validity::kValid);
}

TEST(TalSet, DefaultsExcludeAs0Tals) {
  TalSet d = TalSet::defaults();
  EXPECT_TRUE(d.has(Tal::kArin));
  EXPECT_TRUE(d.has(Tal::kRipe));
  EXPECT_FALSE(d.has(Tal::kApnicAs0));
  EXPECT_FALSE(d.has(Tal::kLacnicAs0));
  EXPECT_TRUE(TalSet::all().has(Tal::kApnicAs0));
}

TEST(Tal, ProductionAndAs0Mapping) {
  EXPECT_EQ(production_tal(rir::Rir::kRipe), Tal::kRipe);
  EXPECT_EQ(*as0_tal(rir::Rir::kApnic), Tal::kApnicAs0);
  EXPECT_FALSE(as0_tal(rir::Rir::kArin).has_value());
  EXPECT_TRUE(is_as0_tal(Tal::kLacnicAs0));
  EXPECT_FALSE(is_as0_tal(Tal::kLacnic));
}

class ArchiveTest : public ::testing::Test {
 protected:
  RoaArchive archive;
};

TEST_F(ArchiveTest, PublishRevokeLifecycle) {
  Roa roa(P("10.0.0.0/16"), A(100), Tal::kRipe);
  archive.publish(roa, D(100));
  EXPECT_FALSE(archive.signed_on(P("10.0.0.0/16"), D(99)));
  EXPECT_TRUE(archive.signed_on(P("10.0.0.0/16"), D(100)));
  EXPECT_TRUE(archive.revoke(roa, D(200)));
  EXPECT_FALSE(archive.signed_on(P("10.0.0.0/16"), D(200)));
  EXPECT_TRUE(archive.signed_on(P("10.0.0.0/16"), D(150)));
  EXPECT_FALSE(archive.revoke(roa, D(300)));  // nothing live
}

TEST_F(ArchiveTest, SignedOnSeesCoveringRoas) {
  archive.publish(Roa(P("10.0.0.0/8"), A(1), Tal::kArin), D(0));
  EXPECT_TRUE(archive.signed_on(P("10.2.0.0/16"), D(1)));
  EXPECT_FALSE(archive.signed_on(P("11.0.0.0/16"), D(1)));
}

TEST_F(ArchiveTest, ValidateRouteAgainstDate) {
  archive.publish(Roa(P("10.0.0.0/16"), A(100), Tal::kRipe), D(100));
  EXPECT_EQ(archive.validate_route(P("10.0.0.0/16"), A(100), D(50)),
            Validity::kNotFound);
  EXPECT_EQ(archive.validate_route(P("10.0.0.0/16"), A(100), D(150)),
            Validity::kValid);
  EXPECT_EQ(archive.validate_route(P("10.0.0.0/16"), A(9), D(150)),
            Validity::kInvalid);
}

TEST_F(ArchiveTest, TalFilteringRespectED) {
  archive.publish(Roa(P("10.0.0.0/8"), net::Asn::as0(), Tal::kApnicAs0),
                  D(0));
  // Default validator does not see the AS0 TAL.
  EXPECT_EQ(archive.validate_route(P("10.2.0.0/16"), A(5), D(1)),
            Validity::kNotFound);
  EXPECT_FALSE(archive.signed_on(P("10.2.0.0/16"), D(1)));
  // A validator with the AS0 TAL configured rejects.
  EXPECT_EQ(archive.validate_route(P("10.2.0.0/16"), A(5), D(1),
                                   TalSet::all()),
            Validity::kInvalid);
}

TEST_F(ArchiveTest, FirstSignedScansLifetimes) {
  archive.publish(Roa(P("10.0.0.0/16"), A(1), Tal::kRipe), D(300));
  archive.publish(Roa(P("10.0.0.0/8"), A(2), Tal::kRipe), D(200));
  auto first = archive.first_signed(P("10.0.0.0/16"));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, D(200));
  EXPECT_FALSE(archive.first_signed(P("11.0.0.0/8")).has_value());
}

TEST_F(ArchiveTest, SignedSpaceFilters) {
  archive.publish(Roa(P("10.0.0.0/8"), A(1), Tal::kRipe), D(0));
  archive.publish(Roa(P("11.0.0.0/8"), net::Asn::as0(), Tal::kRipe), D(0));
  EXPECT_EQ(archive.signed_space(D(1)).slash8_equivalents(), 2.0);
  EXPECT_EQ(archive
                .signed_space(D(1), TalSet::defaults(),
                              RoaArchive::Filter::kNonAs0Only)
                .slash8_equivalents(),
            1.0);
  EXPECT_EQ(archive
                .signed_space(D(1), TalSet::defaults(),
                              RoaArchive::Filter::kAs0Only)
                .slash8_equivalents(),
            1.0);
}

TEST_F(ArchiveTest, MaxLengthMonotonicity) {
  // Raising maxLength never invalidates a previously valid route.
  for (int ml = 16; ml <= 32; ++ml) {
    RoaArchive a;
    a.publish(Roa(P("10.0.0.0/16"), A(1), Tal::kRipe, ml), D(0));
    EXPECT_EQ(a.validate_route(P("10.0.0.0/16"), A(1), D(1)),
              Validity::kValid)
        << ml;
  }
}

}  // namespace
}  // namespace droplens::rpki
