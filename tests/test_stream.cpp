// The streaming subsystem: event codec hostility, EventLog serial
// semantics, online-vs-batch alarm equivalence, Applier-compact vs
// compile_snapshot structural identity, flat snapshot diffs, the
// publisher/subscriber delta protocol (including the RTR-style reset), and
// replay determinism across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/alarms.hpp"
#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "sim/event_replayer.hpp"
#include "sim/generator.hpp"
#include "stream/alarm_monitor.hpp"
#include "stream/applier.hpp"
#include "stream/event.hpp"
#include "stream/event_log.hpp"
#include "stream/publisher.hpp"
#include "stream/snapshot_diff.hpp"
#include "stream/subscriber.hpp"
#include "stream/wire.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace droplens {
namespace {

net::Prefix P(const char* s) { return net::Prefix::parse(s); }

stream::Event make_event(stream::EventType type, const char* prefix,
                         net::Date date, uint32_t value = 0, uint8_t aux = 0,
                         uint8_t aux2 = 0) {
  stream::Event e;
  e.type = type;
  e.prefix = P(prefix);
  e.date = date;
  e.value = value;
  e.aux = aux;
  e.aux2 = aux2;
  return e;
}

// ---------------------------------------------------------------------------
// Event codec

TEST(StreamEvent, CodecRoundTripsEveryType) {
  const net::Date d(7300);
  std::vector<stream::Event> originals = {
      make_event(stream::EventType::kBgpAnnounce, "10.0.0.0/8", d, 65001),
      make_event(stream::EventType::kBgpWithdraw, "10.1.0.0/16", d, 65002),
      make_event(stream::EventType::kRoaAdd, "192.0.2.0/24", d, 65003, 28, 2),
      make_event(stream::EventType::kRoaRemove, "192.0.2.0/24", d, 0, 32, 1),
      make_event(stream::EventType::kDropAdd, "198.51.100.0/24", d, 0, 0x15,
                 1),
      make_event(stream::EventType::kDropRemove, "198.51.100.0/24", d, 0,
                 0x15, 0),
      make_event(stream::EventType::kIrrAdd, "203.0.113.0/24", d, 65004),
      make_event(stream::EventType::kIrrRemove, "203.0.113.0/24", d, 65004),
      make_event(stream::EventType::kDelegationAdd, "41.0.0.0/8", d, 0, 0, 3),
      make_event(stream::EventType::kDelegationRemove, "41.0.0.0/8", d, 0, 0,
                 3),
      make_event(stream::EventType::kRovSet, "10.0.0.0/8", d, 1),
      make_event(stream::EventType::kRovClear, "10.0.0.0/8", d, 2),
      make_event(stream::EventType::kRirSet, "0.0.0.0/0", d, 4),
      make_event(stream::EventType::kRirClear, "255.255.255.255/32", d, 4),
  };
  std::string wire;
  for (const stream::Event& e : originals) stream::encode_event(wire, e);
  ASSERT_EQ(wire.size(), originals.size() * stream::kEventRecordSize);

  std::vector<stream::Event> decoded =
      stream::decode_events(wire, originals.size(), 100);
  ASSERT_EQ(decoded.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    stream::Event expect = originals[i];
    expect.seq = 100 + i;
    EXPECT_EQ(decoded[i], expect) << decoded[i].to_string();
  }
}

TEST(StreamEvent, DecodeRejectsHostileInput) {
  std::string good;
  stream::encode_event(good, make_event(stream::EventType::kBgpAnnounce,
                                        "10.0.0.0/8", net::Date(7300), 1));
  // Truncated record.
  EXPECT_THROW(stream::decode_event(good.substr(0, 15)), ParseError);
  EXPECT_THROW(stream::decode_events(good, 2, 0), ParseError);
  // Unknown types: 0 and one past the last defined value.
  std::string bad = good;
  bad[0] = '\x00';
  EXPECT_THROW(stream::decode_event(bad), ParseError);
  bad[0] = '\x0f';
  EXPECT_THROW(stream::decode_event(bad), ParseError);
  // Impossible prefix length.
  bad = good;
  bad[1] = '\x21';
  EXPECT_THROW(stream::decode_event(bad), ParseError);
  // Non-canonical network: host bits set below the prefix length.
  bad = good;
  bad[8] = '\x01';  // 10.0.0.1/8
  EXPECT_THROW(stream::decode_event(bad), ParseError);
  // ROA with maxLength below the prefix length.
  std::string roa;
  stream::encode_event(roa, make_event(stream::EventType::kRoaAdd,
                                       "192.0.2.0/24", net::Date(7300), 1,
                                       24, 0));
  bad = roa;
  bad[2] = '\x10';  // maxLength 16 < /24
  EXPECT_THROW(stream::decode_event(bad), ParseError);
  bad[2] = '\x28';  // maxLength 40 > 32
  EXPECT_THROW(stream::decode_event(bad), ParseError);
}

TEST(StreamEvent, CanonicalOrderPutsRemovalsFirst) {
  const net::Date d(7300);
  stream::Event withdraw =
      make_event(stream::EventType::kBgpWithdraw, "10.0.0.0/8", d, 2);
  stream::Event announce =
      make_event(stream::EventType::kBgpAnnounce, "10.0.0.0/8", d, 1);
  stream::Event later = announce;
  later.date = d + 1;
  EXPECT_TRUE(stream::canonical_less(withdraw, announce));
  EXPECT_FALSE(stream::canonical_less(announce, withdraw));
  EXPECT_TRUE(stream::canonical_less(announce, later));
  // Within a day and type, prefix then value break ties.
  stream::Event other =
      make_event(stream::EventType::kBgpAnnounce, "11.0.0.0/8", d, 1);
  EXPECT_TRUE(stream::canonical_less(announce, other));
  stream::Event higher = announce;
  higher.value = 9;
  EXPECT_TRUE(stream::canonical_less(announce, higher));
}

// ---------------------------------------------------------------------------
// EventLog serial semantics

TEST(StreamEventLog, AssignsSequencesAndServesTails) {
  stream::EventLog log;
  for (uint32_t i = 0; i < 10; ++i) {
    stream::Event e = make_event(stream::EventType::kBgpAnnounce,
                                 "10.0.0.0/8", net::Date(7300), i + 1);
    EXPECT_EQ(log.append(e), i);
  }
  EXPECT_EQ(log.head(), 10u);
  EXPECT_EQ(log.floor(), 0u);
  EXPECT_EQ(log.size(), 10u);

  stream::EventLog::Tail all = log.since(0, 100);
  EXPECT_FALSE(all.gap);
  EXPECT_EQ(all.from, 0u);
  EXPECT_EQ(all.head, 10u);
  ASSERT_EQ(all.events.size(), 10u);
  for (size_t i = 0; i < all.events.size(); ++i) {
    EXPECT_EQ(all.events[i].seq, i);
    EXPECT_EQ(all.events[i].value, i + 1);
  }

  // max_events caps the run; the next ask resumes exactly after it.
  stream::EventLog::Tail first = log.since(0, 4);
  ASSERT_EQ(first.events.size(), 4u);
  stream::EventLog::Tail second = log.since(4, 100);
  ASSERT_EQ(second.events.size(), 6u);
  EXPECT_EQ(second.events.front().seq, 4u);

  // Caught-up subscriber: empty tail, not a gap.
  stream::EventLog::Tail caught_up = log.since(10, 100);
  EXPECT_FALSE(caught_up.gap);
  EXPECT_TRUE(caught_up.events.empty());
  // Asking beyond head is nonsense — answered as a gap.
  EXPECT_TRUE(log.since(11, 100).gap);
}

TEST(StreamEventLog, TrimAndRetentionProduceGaps) {
  stream::EventLog log;
  for (uint32_t i = 0; i < 10; ++i) {
    log.append(make_event(stream::EventType::kBgpAnnounce, "10.0.0.0/8",
                          net::Date(7300), i + 1));
  }
  log.trim(6);
  EXPECT_EQ(log.floor(), 6u);
  EXPECT_EQ(log.size(), 4u);
  stream::EventLog::Tail gap = log.since(5, 100);
  EXPECT_TRUE(gap.gap);
  EXPECT_EQ(gap.from, 10u);  // reset target: resume from head
  EXPECT_TRUE(gap.events.empty());
  stream::EventLog::Tail ok = log.since(6, 100);
  EXPECT_FALSE(ok.gap);
  ASSERT_EQ(ok.events.size(), 4u);
  EXPECT_EQ(ok.events.front().seq, 6u);

  // A bounded-retention log trims itself as it appends.
  stream::EventLog ring(3);
  for (uint32_t i = 0; i < 8; ++i) {
    ring.append(make_event(stream::EventType::kBgpAnnounce, "10.0.0.0/8",
                           net::Date(7300), i));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.floor(), 5u);
  EXPECT_TRUE(ring.since(4, 100).gap);
  EXPECT_EQ(ring.since(5, 100).events.size(), 3u);
}

// ---------------------------------------------------------------------------
// Wire codecs (subscribe / delta payloads)

TEST(StreamWire, SubscribeRoundTripAndHostileInput) {
  stream::SubscribeRequest request{.from_seq = 0x1122334455667788ull,
                                   .max_events = 512};
  std::string payload = stream::encode_subscribe(request);
  EXPECT_EQ(stream::decode_subscribe(payload), request);

  EXPECT_THROW(stream::decode_subscribe(payload.substr(0, 11)), ParseError);
  EXPECT_THROW(stream::decode_subscribe(payload + "x"), ParseError);
  stream::SubscribeRequest zero{.from_seq = 0, .max_events = 0};
  EXPECT_THROW(stream::decode_subscribe(stream::encode_subscribe(zero)),
               ParseError);
}

TEST(StreamWire, DeltaRoundTripAndHostileInput) {
  stream::Delta delta;
  delta.head = 42;
  delta.from = 40;
  delta.date = net::Date(7300);
  delta.events = {make_event(stream::EventType::kBgpAnnounce, "10.0.0.0/8",
                             net::Date(7300), 65001),
                  make_event(stream::EventType::kRoaAdd, "192.0.2.0/24",
                             net::Date(7300), 65003, 28, 1)};
  core::Alarm alarm;
  alarm.kind = core::AlarmKind::kNewSubPrefix;
  alarm.prefix = P("10.1.0.0/16");
  alarm.monitored = P("10.0.0.0/8");
  alarm.when = net::Date(7300);
  alarm.new_origin = net::Asn(65001);
  alarm.on_drop = true;
  delta.alarms = {alarm};

  std::string payload = stream::encode_delta(delta);
  stream::Delta decoded = stream::decode_delta(payload);
  EXPECT_FALSE(decoded.reset);
  EXPECT_EQ(decoded.head, delta.head);
  EXPECT_EQ(decoded.from, delta.from);
  EXPECT_EQ(decoded.date, delta.date);
  ASSERT_EQ(decoded.events.size(), 2u);
  // Sequence numbers are reconstructed from `from`.
  EXPECT_EQ(decoded.events[0].seq, 40u);
  EXPECT_EQ(decoded.events[1].seq, 41u);
  ASSERT_EQ(decoded.alarms.size(), 1u);
  EXPECT_EQ(decoded.alarms[0].kind, alarm.kind);
  EXPECT_EQ(decoded.alarms[0].prefix, alarm.prefix);
  EXPECT_EQ(decoded.alarms[0].monitored, alarm.monitored);
  EXPECT_EQ(decoded.alarms[0].when, alarm.when);
  EXPECT_EQ(decoded.alarms[0].new_origin, alarm.new_origin);
  EXPECT_EQ(decoded.alarms[0].on_drop, alarm.on_drop);

  // Hostile bytes: truncation, a bad status byte, counts that lie about the
  // payload size, and a reset that smuggles records.
  EXPECT_THROW(stream::decode_delta(payload.substr(0, payload.size() - 1)),
               ParseError);
  EXPECT_THROW(stream::decode_delta(payload + "x"), ParseError);
  std::string bad = payload;
  bad[0] = '\x02';
  EXPECT_THROW(stream::decode_delta(bad), ParseError);
  bad = payload;
  bad[21] = '\x7f';  // event_count high byte: claims ~2M events
  EXPECT_THROW(stream::decode_delta(bad), ParseError);
  bad = payload;
  bad[0] = '\x01';  // reset, but events/alarms still present
  EXPECT_THROW(stream::decode_delta(bad), ParseError);

  // Oversized deltas refuse to encode (frame-size invariant).
  stream::Delta huge = delta;
  huge.alarms.clear();
  huge.events.assign(stream::kMaxDeltaEvents + 1, delta.events[0]);
  EXPECT_THROW(stream::encode_delta(huge), InvariantError);
}

// ---------------------------------------------------------------------------
// World-backed equivalence tests

class StreamWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
    replayer_ = new sim::EventReplayer(*world_);
  }
  static void TearDownTestSuite() {
    delete replayer_;
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  stream::AlarmMonitor::Config monitor_config() const {
    stream::AlarmMonitor::Config config;
    config.window_begin = config_->window_begin;
    config.window_end = config_->window_end;
    config.drop = &world_->drop;
    return config;
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
  static sim::EventReplayer* replayer_;
};

sim::ScenarioConfig* StreamWorldTest::config_ = nullptr;
sim::World* StreamWorldTest::world_ = nullptr;
sim::EventReplayer* StreamWorldTest::replayer_ = nullptr;

TEST_F(StreamWorldTest, ReplayerEventsAreCanonicallyOrdered) {
  const std::vector<stream::Event>& events = replayer_->events();
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             stream::canonical_less));
  // The per-day view tiles the stream.
  size_t total = 0;
  for (net::Date d = events.front().date; d <= events.back().date; d = d + 1) {
    for (const stream::Event& e : replayer_->on(d)) {
      EXPECT_EQ(e.date, d);
      ++total;
    }
  }
  EXPECT_EQ(total, events.size());
  // Lowering the same world twice is deterministic.
  sim::EventReplayer again(*world_);
  EXPECT_EQ(again.events(), events);
}

TEST_F(StreamWorldTest, OnlineAlarmsMatchBatchReplayExactly) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  core::AlarmResult batch = core::analyze_alarms(s, index);

  stream::AlarmMonitor monitor(monitor_config());
  for (const stream::Event& e : replayer_->events()) monitor.on_event(e);

  ASSERT_EQ(monitor.alarms().size(), batch.alarms.size());
  for (size_t i = 0; i < batch.alarms.size(); ++i) {
    const core::Alarm& online = monitor.alarms()[i];
    const core::Alarm& offline = batch.alarms[i];
    EXPECT_EQ(online.kind, offline.kind) << i;
    EXPECT_EQ(online.prefix, offline.prefix) << i;
    EXPECT_EQ(online.monitored, offline.monitored) << i;
    EXPECT_EQ(online.when, offline.when) << i;
    EXPECT_EQ(online.new_origin, offline.new_origin) << i;
    EXPECT_EQ(online.on_drop, offline.on_drop) << i;
  }
  core::AlarmResult online = monitor.result(s, index);
  EXPECT_EQ(online.drop_hijacks_total, batch.drop_hijacks_total);
  EXPECT_EQ(online.drop_hijacks_alarmed, batch.drop_hijacks_alarmed);
  EXPECT_EQ(online.drop_hijacks_stealthy, batch.drop_hijacks_stealthy);
}

TEST_F(StreamWorldTest, ApplierCompactMatchesCompileSnapshot) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);

  stream::Applier applier;
  applier.seed_rir(world_->registry);
  size_t next = 0;
  const std::vector<stream::Event>& events = replayer_->events();
  for (net::Date d : {config_->window_begin, config_->window_begin + 60,
                      config_->window_end}) {
    while (next < events.size() && events[next].date <= d) {
      applier.apply(events[next]);
      ++next;
    }
    std::shared_ptr<const svc::Snapshot> live = applier.compact(d, 7);
    std::shared_ptr<const svc::Snapshot> batch =
        svc::compile_snapshot(s, index, d, 7);
    EXPECT_TRUE(stream::snapshots_equal(*live, *batch))
        << "divergence on " << d.to_string();
    EXPECT_EQ(live->date(), d);
    EXPECT_EQ(live->version(), 7u);
  }
  EXPECT_EQ(applier.rejected(), 0u);
}

TEST_F(StreamWorldTest, ReplayIsDeterministicAcrossThreadCounts) {
  core::Study seq = study();
  core::Study par = study();
  util::ThreadPool pool(4);
  par.pool = &pool;
  core::DropIndex index = core::DropIndex::build(seq);
  net::Date d = config_->window_begin + 30;

  stream::Applier applier;
  applier.seed_rir(world_->registry);
  for (const stream::Event& e : replayer_->events()) {
    if (e.date <= d) applier.apply(e);
  }
  std::shared_ptr<const svc::Snapshot> live = applier.compact(d, 1);
  std::shared_ptr<const svc::Snapshot> one =
      svc::compile_snapshot(seq, index, d, 1);
  std::shared_ptr<const svc::Snapshot> four =
      svc::compile_snapshot(par, index, d, 1);
  EXPECT_TRUE(stream::snapshots_equal(*one, *four));
  EXPECT_TRUE(stream::snapshots_equal(*live, *one));
  EXPECT_TRUE(stream::snapshots_equal(*live, *four));
}

TEST_F(StreamWorldTest, SnapshotDiffRoundTrips) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date da = config_->window_begin + 10;
  net::Date db = config_->window_begin + 90;
  std::shared_ptr<const svc::Snapshot> a =
      svc::compile_snapshot(s, index, da, 1);
  std::shared_ptr<const svc::Snapshot> b =
      svc::compile_snapshot(s, index, db, 2);

  std::vector<stream::Event> diff = stream::diff_snapshots(*a, *b);
  EXPECT_TRUE(std::is_sorted(diff.begin(), diff.end(),
                             stream::canonical_less));
  svc::Snapshot rebuilt = stream::apply_diff(*a, diff, db, 2);
  EXPECT_TRUE(stream::snapshots_equal(rebuilt, *b));
  EXPECT_EQ(rebuilt.date(), db);
  EXPECT_EQ(rebuilt.version(), 2u);

  // Equal snapshots diff to nothing; empty diffs change nothing.
  EXPECT_TRUE(stream::diff_snapshots(*b, *b).empty());
  svc::Snapshot same = stream::apply_diff(*a, {}, da, 1);
  EXPECT_TRUE(stream::snapshots_equal(same, *a));

  // The Applier refuses flat-diff assertion types: derived state is
  // computed, never asserted, on the live path.
  stream::Applier applier;
  for (const stream::Event& e : diff) {
    if (e.type == stream::EventType::kRovSet ||
        e.type == stream::EventType::kRovClear ||
        e.type == stream::EventType::kRirSet ||
        e.type == stream::EventType::kRirClear) {
      EXPECT_FALSE(applier.apply(e));
    }
  }
}

TEST_F(StreamWorldTest, PublisherDeliversDeltasToSubscriber) {
  stream::Publisher publisher(monitor_config());
  publisher.seed_rir(world_->registry);

  svc::Server server;
  server.set_stream_feed(&publisher);
  svc::LoopbackConnection conn(server);
  svc::Client client(conn);
  stream::Subscriber subscriber(client);

  // Interleave ingest with polling so deltas are served mid-stream.
  const std::vector<stream::Event>& events = replayer_->events();
  std::vector<stream::Event> received;
  std::vector<core::Alarm> alarmed;
  size_t ingested = 0;
  while (ingested < events.size() || subscriber.next() < publisher.head()) {
    size_t burst = std::min<size_t>(1000, events.size() - ingested);
    for (size_t i = 0; i < burst; ++i) publisher.ingest(events[ingested++]);
    stream::Delta delta = subscriber.poll(512);
    ASSERT_FALSE(delta.reset);
    for (stream::Event e : delta.events) {
      EXPECT_EQ(e.seq, received.size());
      e.seq = 0;  // replayer events are unstamped
      received.push_back(e);
    }
    for (const core::Alarm& a : delta.alarms) alarmed.push_back(a);
  }
  EXPECT_EQ(received, events);
  EXPECT_EQ(subscriber.next(), publisher.head());
  EXPECT_EQ(subscriber.resets(), 0u);

  // The alarms carried by the deltas are the monitor's, in firing order.
  const std::vector<core::Alarm>& fired = publisher.monitor().alarms();
  ASSERT_EQ(alarmed.size(), fired.size());
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(alarmed[i].kind, fired[i].kind);
    EXPECT_EQ(alarmed[i].prefix, fired[i].prefix);
    EXPECT_EQ(alarmed[i].when, fired[i].when);
  }
}

TEST_F(StreamWorldTest, TrimForcesSubscriberReset) {
  stream::Publisher publisher(monitor_config());
  publisher.seed_rir(world_->registry);
  const std::vector<stream::Event>& events = replayer_->events();
  ASSERT_GT(events.size(), 300u);
  for (const stream::Event& e : events) publisher.ingest(e);
  publisher.trim(100);  // discard all but the last 100 events

  svc::Server server;
  server.set_stream_feed(&publisher);
  svc::LoopbackConnection conn(server);
  svc::Client client(conn);

  // A subscriber from the beginning of history lands below the floor.
  stream::Subscriber lagging(client, 0);
  stream::Delta reset = lagging.poll();
  EXPECT_TRUE(reset.reset);
  EXPECT_TRUE(reset.events.empty());
  EXPECT_EQ(lagging.next(), publisher.head());
  EXPECT_EQ(lagging.resets(), 1u);
  // After re-baselining, polling resumes cleanly from the head.
  stream::Delta tail = lagging.poll();
  EXPECT_FALSE(tail.reset);
  EXPECT_TRUE(tail.events.empty());
  stream::Event extra = events.back();
  extra.seq = 0;
  publisher.ingest(extra);
  stream::Delta next = lagging.poll();
  EXPECT_FALSE(next.reset);
  ASSERT_EQ(next.events.size(), 1u);
  EXPECT_EQ(next.events[0].seq, publisher.head() - 1);

  // The retained suffix is still served without a reset.
  stream::Subscriber resumed(client, publisher.head() - 50);
  stream::Delta suffix = resumed.poll();
  EXPECT_FALSE(suffix.reset);
  EXPECT_EQ(suffix.events.size(), 50u);
  EXPECT_EQ(resumed.resets(), 0u);
}

// A server that answers out of contract (events starting at the wrong
// sequence) must make the subscriber throw, never silently skip.
class SkewedFeed : public svc::StreamFeed {
 public:
  std::string handle_subscribe(std::string_view payload) override {
    stream::SubscribeRequest request = stream::decode_subscribe(payload);
    stream::Delta delta;
    delta.head = request.from_seq + 10;
    delta.from = request.from_seq + 2;  // claims to skip two events
    delta.date = net::Date(7300);
    delta.events = {make_event(stream::EventType::kBgpAnnounce, "10.0.0.0/8",
                               net::Date(7300), 65001)};
    return svc::encode_frame(svc::FrameType::kDeltaResponse,
                             stream::encode_delta(delta));
  }
};

TEST_F(StreamWorldTest, SubscriberRejectsNonConsecutiveDeltas) {
  SkewedFeed feed;
  svc::Server server;
  server.set_stream_feed(&feed);
  svc::LoopbackConnection conn(server);
  svc::Client client(conn);
  stream::Subscriber subscriber(client, 5);
  EXPECT_THROW(subscriber.poll(), std::runtime_error);
  EXPECT_EQ(subscriber.next(), 5u);  // a bad answer must not advance us
}

}  // namespace
}  // namespace droplens
