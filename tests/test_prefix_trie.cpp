#include <gtest/gtest.h>

#include <map>

#include "net/prefix_trie.hpp"
#include "sim/rng.hpp"

namespace droplens::net {
namespace {

TEST(PrefixMap, InsertFindErase) {
  PrefixMap<int> m;
  Prefix p = Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(m.find(p), nullptr);
  m.insert_or_assign(p, 7);
  ASSERT_NE(m.find(p), nullptr);
  EXPECT_EQ(*m.find(p), 7);
  EXPECT_EQ(m.size(), 1u);
  m.insert_or_assign(p, 9);  // overwrite, not duplicate
  EXPECT_EQ(*m.find(p), 9);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(p));
  EXPECT_FALSE(m.erase(p));
  EXPECT_EQ(m.find(p), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(PrefixMap, ExactMatchDistinguishesLengths) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 8);
  m.insert_or_assign(Prefix::parse("10.0.0.0/16"), 16);
  EXPECT_EQ(*m.find(Prefix::parse("10.0.0.0/8")), 8);
  EXPECT_EQ(*m.find(Prefix::parse("10.0.0.0/16")), 16);
  EXPECT_EQ(m.find(Prefix::parse("10.0.0.0/12")), nullptr);
}

TEST(PrefixMap, SubscriptDefaultConstructs) {
  PrefixMap<std::vector<int>> m;
  m[Prefix::parse("10.0.0.0/8")].push_back(1);
  m[Prefix::parse("10.0.0.0/8")].push_back(2);
  EXPECT_EQ(m.find(Prefix::parse("10.0.0.0/8"))->size(), 2u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(PrefixMap, RootValue) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix(), 42);  // 0.0.0.0/0
  int seen = 0;
  m.for_each_covering(Prefix::parse("192.0.2.0/24"),
                      [&](const Prefix& p, int v) {
                        EXPECT_EQ(p.length(), 0);
                        seen = v;
                      });
  EXPECT_EQ(seen, 42);
}

TEST(PrefixMap, CoveringOrderIsRootDown) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 8);
  m.insert_or_assign(Prefix::parse("10.2.0.0/16"), 16);
  m.insert_or_assign(Prefix::parse("10.2.3.0/24"), 24);
  std::vector<int> seen;
  m.for_each_covering(Prefix::parse("10.2.3.0/24"),
                      [&](const Prefix&, int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{8, 16, 24}));
}

TEST(PrefixMap, CoveredVisitsSubtreeOnly) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 1);
  m.insert_or_assign(Prefix::parse("10.2.0.0/16"), 2);
  m.insert_or_assign(Prefix::parse("11.0.0.0/8"), 3);
  std::vector<int> seen;
  m.for_each_covered(Prefix::parse("10.0.0.0/8"),
                     [&](const Prefix&, int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(PrefixMap, LongestMatch) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 8);
  m.insert_or_assign(Prefix::parse("10.2.0.0/16"), 16);
  Prefix matched;
  const int* v = m.longest_match(Prefix::parse("10.2.3.0/24"), &matched);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 16);
  EXPECT_EQ(matched, Prefix::parse("10.2.0.0/16"));
  EXPECT_EQ(m.longest_match(Prefix::parse("12.0.0.0/8")), nullptr);
}

TEST(PrefixMap, MoveSemantics) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 1);
  PrefixMap<int> n = std::move(m);
  EXPECT_EQ(n.size(), 1u);
  ASSERT_NE(n.find(Prefix::parse("10.0.0.0/8")), nullptr);
}

// Regression: the defaulted move ops stole root_'s children but left size_
// behind, so a moved-from map reported size() > 0 while holding nothing.
TEST(PrefixMap, MovedFromMapIsEmpty) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 1);
  m.insert_or_assign(Prefix::parse("11.0.0.0/8"), 2);

  PrefixMap<int> n = std::move(m);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(n.size(), 2u);

  // Move assignment, same contract; the source must be reusable.
  PrefixMap<int> o;
  o.insert_or_assign(Prefix::parse("12.0.0.0/8"), 3);
  o = std::move(n);
  EXPECT_EQ(n.size(), 0u);
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(o.size(), 2u);
  n.insert_or_assign(Prefix::parse("13.0.0.0/8"), 4);
  EXPECT_EQ(n.size(), 1u);
  ASSERT_NE(n.find(Prefix::parse("13.0.0.0/8")), nullptr);
}

// Regression: erase() left every interior node on the descent path alive
// forever, so add/erase churn (BGP fleets, IRR snapshot replays) grew the
// trie monotonically. Pruning must drop childless value-less nodes.
TEST(PrefixMap, ErasePrunesEmptyInteriorNodes) {
  PrefixMap<int> m;
  const size_t empty_nodes = m.node_count();  // just the root
  m.insert_or_assign(Prefix::parse("10.2.3.0/24"), 1);
  const size_t with_entry = m.node_count();
  EXPECT_EQ(with_entry, empty_nodes + 24);

  EXPECT_TRUE(m.erase(Prefix::parse("10.2.3.0/24")));
  EXPECT_EQ(m.node_count(), empty_nodes);

  // Churn: node count must not grow across add/erase cycles.
  for (int round = 0; round < 100; ++round) {
    Prefix p = Prefix::containing(
        Ipv4(static_cast<uint32_t>(round) * 0x01010101u), 24);
    m.insert_or_assign(p, round);
    ASSERT_TRUE(m.erase(p));
    ASSERT_EQ(m.node_count(), empty_nodes) << "round " << round;
  }
}

// Pruning must stop at nodes still carrying a value or a sibling subtree.
TEST(PrefixMap, EraseKeepsNodesStillInUse) {
  PrefixMap<int> m;
  m.insert_or_assign(Prefix::parse("10.0.0.0/8"), 8);
  m.insert_or_assign(Prefix::parse("10.2.0.0/16"), 16);
  const size_t before = m.node_count();
  m.insert_or_assign(Prefix::parse("10.2.3.0/24"), 24);
  EXPECT_TRUE(m.erase(Prefix::parse("10.2.3.0/24")));
  EXPECT_EQ(m.node_count(), before);
  // The ancestors with values survived.
  EXPECT_NE(m.find(Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_NE(m.find(Prefix::parse("10.2.0.0/16")), nullptr);
  Prefix matched;
  ASSERT_NE(m.longest_match(Prefix::parse("10.2.3.0/24"), &matched), nullptr);
  EXPECT_EQ(matched, Prefix::parse("10.2.0.0/16"));
}

// The tightened longest_match must agree with the covering-walk definition,
// including a value at the root and an exact match at the key itself.
TEST(PrefixMap, LongestMatchAgreesWithCoveringWalk) {
  sim::Rng rng(99);
  PrefixMap<int> m;
  m.insert_or_assign(Prefix(), -1);  // 0.0.0.0/0
  for (int i = 0; i < 300; ++i) {
    int len = 1 + static_cast<int>(rng.below(32));
    m.insert_or_assign(
        Prefix::containing(Ipv4(static_cast<uint32_t>(rng.next())), len), i);
  }
  for (int probe = 0; probe < 300; ++probe) {
    int len = static_cast<int>(rng.below(33));
    Prefix q = Prefix::containing(Ipv4(static_cast<uint32_t>(rng.next())),
                                  len);
    const int* ref = nullptr;
    Prefix ref_matched;
    m.for_each_covering(q, [&](const Prefix& p, const int& v) {
      ref = &v;
      ref_matched = p;
    });
    Prefix got_matched;
    const int* got = m.longest_match(q, &got_matched);
    ASSERT_EQ(got, ref);
    if (got) ASSERT_EQ(got_matched, ref_matched);
  }
}

// Property sweep: trie traversals agree with a brute-force scan over a
// std::map reference model.
class TriePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriePropertyTest, AgreesWithBruteForce) {
  sim::Rng rng(GetParam());
  PrefixMap<int> trie;
  std::map<Prefix, int> model;
  for (int i = 0; i < 400; ++i) {
    int len = 4 + static_cast<int>(rng.below(25));
    Prefix p = Prefix::containing(Ipv4(static_cast<uint32_t>(rng.next())),
                                  len);
    if (rng.chance(0.85)) {
      trie.insert_or_assign(p, i);
      model[p] = i;
    } else {
      bool a = trie.erase(p);
      bool b = model.erase(p) > 0;
      ASSERT_EQ(a, b);
    }
  }
  ASSERT_EQ(trie.size(), model.size());

  for (int probe = 0; probe < 200; ++probe) {
    int len = static_cast<int>(rng.below(33));
    Prefix q = Prefix::containing(Ipv4(static_cast<uint32_t>(rng.next())),
                                  len);
    // exact
    const int* got = trie.find(q);
    auto it = model.find(q);
    ASSERT_EQ(got != nullptr, it != model.end());
    if (got) ASSERT_EQ(*got, it->second);
    // covering
    std::multiset<int> trie_covering, model_covering;
    trie.for_each_covering(q, [&](const Prefix&, int v) {
      trie_covering.insert(v);
    });
    for (const auto& [p, v] : model) {
      if (p.contains(q)) model_covering.insert(v);
    }
    ASSERT_EQ(trie_covering, model_covering);
    // covered
    std::multiset<int> trie_covered, model_covered;
    trie.for_each_covered(q, [&](const Prefix&, int v) {
      trie_covered.insert(v);
    });
    for (const auto& [p, v] : model) {
      if (q.contains(p)) model_covered.insert(v);
    }
    ASSERT_EQ(trie_covered, model_covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(5, 55, 555, 5555));

}  // namespace
}  // namespace droplens::net
