#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt.hpp"
#include "util/error.hpp"

namespace droplens::bgp {
namespace {

std::vector<Update> sample_updates() {
  return {
      Update{net::Date(18000), 3, UpdateType::kAnnounce,
             net::Prefix::parse("10.0.0.0/8"),
             AsPath{net::Asn(100), net::Asn(4200000000u)}},
      Update{net::Date(18001), 3, UpdateType::kWithdraw,
             net::Prefix::parse("10.0.0.0/8"), AsPath{}},
      Update{net::Date(-5), 0, UpdateType::kAnnounce,
             net::Prefix::parse("255.255.255.255/32"),
             AsPath{net::Asn(1)}},
  };
}

TEST(Mrtl, RoundTrip) {
  std::stringstream buf;
  std::vector<Update> in = sample_updates();
  write_mrtl(buf, in);
  std::vector<Update> out = read_mrtl(buf);
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].date, in[i].date);
    EXPECT_EQ(out[i].peer, in[i].peer);
    EXPECT_EQ(out[i].type, in[i].type);
    EXPECT_EQ(out[i].prefix, in[i].prefix);
    EXPECT_EQ(out[i].path, in[i].path);
  }
}

TEST(Mrtl, EmptyStreamRoundTrips) {
  std::stringstream buf;
  write_mrtl(buf, {});
  EXPECT_TRUE(read_mrtl(buf).empty());
}

TEST(Mrtl, RejectsBadMagic) {
  std::stringstream buf("XXXX rest");
  EXPECT_THROW(read_mrtl(buf), ParseError);
}

TEST(Mrtl, RejectsTruncation) {
  std::stringstream buf;
  write_mrtl(buf, sample_updates());
  std::string bytes = buf.str();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(read_mrtl(truncated), ParseError) << "cut at " << cut;
  }
}

TEST(Mrtl, RejectsCorruptRecords) {
  // Corrupt the update-type byte of the first record: offset =
  // 4 (magic) + 2 (version) + 8 (count) + 4 (date) + 4 (peer) = 22.
  std::stringstream buf;
  write_mrtl(buf, sample_updates());
  std::string bytes = buf.str();
  bytes[22] = 7;
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_mrtl(corrupt), ParseError);
}

TEST(Mrtl, RejectsHostBitsInPrefix) {
  // Hand-craft a record with host bits set beyond the prefix length.
  std::stringstream buf;
  write_mrtl(buf, {Update{net::Date(0), 0, UpdateType::kAnnounce,
                          net::Prefix::parse("10.0.0.1/32"),
                          AsPath{net::Asn(1)}}});
  std::string bytes = buf.str();
  // Prefix length byte follows date(4)+peer(4)+type(1)+addr(4) after header.
  bytes[14 + 4 + 4 + 1 + 4] = 8;  // now 10.0.0.1/8 -> host bits set
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_mrtl(corrupt), ParseError);
}

}  // namespace
}  // namespace droplens::bgp
