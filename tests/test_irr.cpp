#include <gtest/gtest.h>

#include "irr/database.hpp"
#include "irr/rpsl.hpp"
#include "util/error.hpp"

namespace droplens::irr {
namespace {

net::Date D(int d) { return net::Date(d); }

TEST(Rpsl, ParsesSingleObject) {
  auto objects = parse_rpsl(
      "route:   192.0.2.0/24\n"
      "descr:   Example route\n"
      "origin:  AS64500\n"
      "mnt-by:  MAINT-EX\n"
      "source:  RADB\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].cls(), "route");
  EXPECT_EQ(*objects[0].get("origin"), "AS64500");
  EXPECT_FALSE(objects[0].get("org").has_value());
}

TEST(Rpsl, SplitsObjectsOnBlankLines) {
  auto objects = parse_rpsl(
      "route: 10.0.0.0/8\norigin: AS1\n"
      "\n"
      "route: 11.0.0.0/8\norigin: AS2\n");
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(*objects[1].get("origin"), "AS2");
}

TEST(Rpsl, ContinuationLines) {
  auto objects = parse_rpsl(
      "route: 10.0.0.0/8\n"
      "descr: line one\n"
      "       line two\n"
      "+line three\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(*objects[0].get("descr"), "line one line two line three");
}

TEST(Rpsl, StripsComments) {
  auto objects = parse_rpsl("route: 10.0.0.0/8 # the whole /8\norigin: AS1\n");
  EXPECT_EQ(*objects[0].get("route"), "10.0.0.0/8");
}

TEST(Rpsl, RejectsMalformed) {
  EXPECT_THROW(parse_rpsl("  leading continuation\n"), ParseError);
  EXPECT_THROW(parse_rpsl("no colon here\n"), ParseError);
  EXPECT_THROW(parse_rpsl(": empty attribute\n"), ParseError);
}

TEST(RouteObject, RpslRoundTrip) {
  RouteObject obj;
  obj.prefix = net::Prefix::parse("192.0.2.0/24");
  obj.origin = net::Asn(64500);
  obj.maintainer = "MAINT-EX";
  obj.org_id = "ORG-EX1";
  obj.descr = "Example";
  obj.created = net::Date::parse("2020-05-01");
  std::string text = obj.to_rpsl();
  auto parsed = parse_rpsl(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(RouteObject::from_rpsl(parsed[0]), obj);
}

TEST(RouteObject, FromRpslValidation) {
  EXPECT_THROW(RouteObject::from_rpsl(
                   parse_rpsl("mntner: FOO\n")[0]),
               ParseError);
  EXPECT_THROW(RouteObject::from_rpsl(
                   parse_rpsl("route: 10.0.0.0/8\norigin: banana\n")[0]),
               ParseError);
}

class DatabaseTest : public ::testing::Test {
 protected:
  RouteObject make(const char* prefix, uint32_t asn, int created,
                   const char* org = "ORG-1") {
    RouteObject obj;
    obj.prefix = net::Prefix::parse(prefix);
    obj.origin = net::Asn(asn);
    obj.maintainer = "MAINT-X";
    obj.org_id = org;
    obj.created = D(created);
    return obj;
  }
  Database db;
};

TEST_F(DatabaseTest, RegisterAndQueryByDate) {
  ASSERT_TRUE(db.register_object(make("10.0.0.0/16", 100, 50)));
  EXPECT_TRUE(db.exact(net::Prefix::parse("10.0.0.0/16"), D(49)).empty());
  EXPECT_EQ(db.exact(net::Prefix::parse("10.0.0.0/16"), D(50)).size(), 1u);
  EXPECT_EQ(db.live_count(D(60)), 1u);
}

TEST_F(DatabaseTest, RemovalEndsLifetime) {
  db.register_object(make("10.0.0.0/16", 100, 50));
  EXPECT_TRUE(db.remove_object(net::Prefix::parse("10.0.0.0/16"),
                               net::Asn(100), D(80)));
  EXPECT_EQ(db.exact(net::Prefix::parse("10.0.0.0/16"), D(79)).size(), 1u);
  EXPECT_TRUE(db.exact(net::Prefix::parse("10.0.0.0/16"), D(80)).empty());
  // History still remembers it.
  EXPECT_EQ(db.history(net::Prefix::parse("10.0.0.0/16")).size(), 1u);
  // Removing again fails (nothing live).
  EXPECT_FALSE(db.remove_object(net::Prefix::parse("10.0.0.0/16"),
                                net::Asn(100), D(90)));
}

TEST_F(DatabaseTest, ExactOrMoreSpecific) {
  db.register_object(make("10.0.0.0/16", 100, 0));
  db.register_object(make("10.0.3.0/24", 200, 0));
  db.register_object(make("10.1.0.0/16", 300, 0));
  auto regs = db.exact_or_more_specific(net::Prefix::parse("10.0.0.0/16"),
                                        D(10));
  EXPECT_EQ(regs.size(), 2u);
  auto covering = db.covering(net::Prefix::parse("10.0.3.0/24"), D(10));
  EXPECT_EQ(covering.size(), 2u);
}

TEST_F(DatabaseTest, RadbAcceptsConflictingOrigins) {
  // The RADb behaviour the paper pivots on: no authorization whatsoever —
  // a second ORG can register the same prefix with a different origin.
  db.register_object(make("10.0.0.0/16", 100, 0, "ORG-OWNER"));
  EXPECT_TRUE(db.register_object(make("10.0.0.0/16", 666, 10, "ORG-EVIL")));
  EXPECT_EQ(db.exact(net::Prefix::parse("10.0.0.0/16"), D(20)).size(), 2u);
}

TEST_F(DatabaseTest, AuthorizationHookCanReject) {
  Database strict("STRICT", [](const RouteObject& obj) {
    return obj.origin != net::Asn(666);
  });
  EXPECT_TRUE(strict.register_object(make("10.0.0.0/16", 100, 0)));
  EXPECT_FALSE(strict.register_object(make("10.0.0.0/16", 666, 0)));
  EXPECT_EQ(strict.total_registrations(), 1u);
}

TEST_F(DatabaseTest, SnapshotContainsOnlyLiveObjects) {
  db.register_object(make("10.0.0.0/16", 100, 0));
  db.register_object(make("11.0.0.0/16", 200, 0));
  db.remove_object(net::Prefix::parse("11.0.0.0/16"), net::Asn(200), D(5));
  std::string snapshot = db.snapshot_rpsl(D(10));
  EXPECT_NE(snapshot.find("10.0.0.0/16"), std::string::npos);
  EXPECT_EQ(snapshot.find("11.0.0.0/16"), std::string::npos);
  // The snapshot parses back as RPSL.
  auto objects = parse_rpsl(snapshot);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(RouteObject::from_rpsl(objects[0]).source, "RADB");
}

TEST_F(DatabaseTest, RemoveBeforeCreateIsRejected) {
  db.register_object(make("10.0.0.0/16", 100, 50));
  EXPECT_FALSE(db.remove_object(net::Prefix::parse("10.0.0.0/16"),
                                net::Asn(100), D(40)));
  // Still live afterwards.
  EXPECT_EQ(db.exact(net::Prefix::parse("10.0.0.0/16"), D(60)).size(), 1u);
}

}  // namespace
}  // namespace droplens::irr
