// The query service: SegmentMap semantics, snapshot compilation against the
// raw substrates, the wire protocol, client/server round-trips over loopback
// and TCP, whois riding the same transport, and the built-in counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/drop_index.hpp"
#include "core/engine.hpp"
#include "core/snapshot_cache.hpp"
#include "irr/whois.hpp"
#include "net/segment_map.hpp"
#include "sim/generator.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/transport.hpp"
#include "svc/whois_service.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace droplens {
namespace {

net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(SegmentMap, AssignIsOverwriteLookupIsPointStab) {
  net::SegmentMap<int> map;
  map.assign(P("10.0.0.0/8"), 1);
  map.assign(P("10.1.0.0/16"), 2);  // later paint wins where they overlap
  map.finalize();
  EXPECT_EQ(*map.lookup(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*map.lookup(P("10.1.0.0/16")), 2);
  EXPECT_EQ(*map.lookup(P("10.1.2.0/24")), 2);
  EXPECT_EQ(*map.lookup(P("10.200.0.0/16")), 1);
  EXPECT_EQ(map.lookup(P("11.0.0.0/8")), nullptr);
}

TEST(SegmentMap, MergeCombinesOverlaps) {
  net::SegmentMap<int> map;
  auto orr = [](const std::optional<int>& existing, const int& v) {
    return existing ? (*existing | v) : v;
  };
  map.merge(P("10.0.0.0/24").first(), P("10.0.0.0/24").end(), 1, orr);
  map.merge(P("10.0.0.0/25").first(), P("10.0.0.0/25").end(), 2, orr);
  map.finalize();
  EXPECT_EQ(*map.lookup(P("10.0.0.0/25")), 3);
  EXPECT_EQ(*map.lookup(P("10.0.0.128/25")), 1);
}

TEST(SegmentMap, AdjacentEqualSegmentsCoalesce) {
  net::SegmentMap<int> map;
  map.assign(P("10.0.0.0/25"), 7);
  map.assign(P("10.0.0.128/25"), 7);
  map.finalize();
  ASSERT_EQ(map.segments().size(), 1u);
  EXPECT_EQ(map.segments()[0].begin, P("10.0.0.0/24").first());
  EXPECT_EQ(map.segments()[0].end, P("10.0.0.0/24").end());
}

class ServiceWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* ServiceWorldTest::config_ = nullptr;
sim::World* ServiceWorldTest::world_ = nullptr;

// A broad sample of prefixes to interrogate: every DROP entry plus fixed
// probes spread across the address space.
std::vector<net::Prefix> probe_prefixes(const core::DropIndex& index) {
  std::vector<net::Prefix> probes;
  for (const core::DropEntry& e : index.entries()) probes.push_back(e.prefix);
  for (uint32_t octet = 1; octet < 224; octet += 7) {
    probes.push_back(net::Prefix(net::Ipv4(octet << 24), 8));
    probes.push_back(net::Prefix(net::Ipv4((octet << 24) | 0x00010000), 16));
    probes.push_back(net::Prefix(net::Ipv4((octet << 24) | 0x00020300), 24));
  }
  return probes;
}

TEST_F(ServiceWorldTest, SnapshotMatchesSubstrates) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  auto snap = svc::compile_snapshot(s, index, d, 1);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(snap->date(), d);
  EXPECT_EQ(snap->degraded(), 0);  // no ledger: every feed trusted

  const net::IntervalSet routed = world_->fleet.routed_space(d);
  const net::IntervalSet as0 = world_->roas.signed_space(
      d, rpki::TalSet::all(), rpki::RoaArchive::Filter::kAs0Only);
  const net::IntervalSet allocated = world_->registry.allocated_space(d);
  net::IntervalSet irr_covered;
  for (const irr::Registration& reg : world_->irr.all_history()) {
    if (reg.live_on(d)) irr_covered.insert(reg.object.prefix);
  }
  net::IntervalSet dropped;
  for (const net::Prefix& p : world_->drop.snapshot(d)) dropped.insert(p);

  for (const net::Prefix& p : probe_prefixes(index)) {
    svc::Answer a = snap->lookup(p, svc::kAllFields);
    EXPECT_EQ(a.routed, routed.intersects(p)) << p.to_string();
    EXPECT_EQ(a.as0_covered, as0.intersects(p)) << p.to_string();
    EXPECT_EQ(a.irr_registered, irr_covered.intersects(p)) << p.to_string();
    // DROP membership is a point-stab at the network address.
    EXPECT_EQ(a.drop_listed, dropped.contains(net::Ipv4(p.network().value())))
        << p.to_string();
    if (a.rir_status == svc::RirStatus::kAllocated) {
      EXPECT_TRUE(allocated.contains(net::Ipv4(p.network().value())))
          << p.to_string();
    }
    if (a.drop_listed) {
      EXPECT_NE(a.categories, 0) << p.to_string();
      EXPECT_NE(a.bucket, svc::kNoValue) << p.to_string();
    } else {
      EXPECT_EQ(a.bucket, svc::kNoValue) << p.to_string();
    }
  }
}

TEST_F(ServiceWorldTest, SnapshotRovAgreesWithDirectValidation) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  auto snap = svc::compile_snapshot(s, index, d, 1);
  size_t announced_probes = 0;
  for (const net::Prefix& p : world_->fleet.announced_prefixes_on(d)) {
    svc::Answer a = snap->lookup(p, svc::field_bit(svc::Field::kRov));
    ASSERT_NE(a.rov, svc::RovStatus::kUnrouted) << p.to_string();
    // The snapshot answers for the most specific covering announcement —
    // which is p itself when we probe an announced prefix exactly, unless a
    // longer announcement starts at the same address. Check the aggregate
    // matches a direct RFC 6811 pass for prefixes where p is the answer.
    svc::RovStatus worst = svc::RovStatus::kNotFound;
    for (net::Asn origin : world_->fleet.origins_on(p, d)) {
      switch (world_->roas.validate_route(p, origin, d)) {
        case rpki::Validity::kInvalid:
          worst = svc::RovStatus::kInvalid;
          break;
        case rpki::Validity::kValid:
          if (worst != svc::RovStatus::kInvalid) worst = svc::RovStatus::kValid;
          break;
        case rpki::Validity::kNotFound:
          break;
      }
    }
    bool shadowed = false;
    for (const net::Prefix& q : world_->fleet.announced_prefixes_on(d)) {
      if (q.length() > p.length() && q.network().value() == p.network().value()) {
        shadowed = true;
      }
    }
    if (!shadowed) {
      EXPECT_EQ(a.rov, worst) << p.to_string();
      ++announced_probes;
    }
  }
  EXPECT_GT(announced_probes, 0u);
}

TEST_F(ServiceWorldTest, SnapshotIsByteIdenticalAcrossThreadCounts) {
  core::Study s1 = study();
  core::DropIndex index = core::DropIndex::build(s1);
  auto seq = svc::compile_snapshot(s1, index, config_->window_begin + 60, 5);

  util::ThreadPool pool(4);
  core::SnapshotCache cache(world_->registry, world_->fleet, world_->roas,
                            world_->drop, &world_->irr);
  core::Study s4 = study();
  s4.pool = &pool;
  s4.snapshots = &cache;
  auto par = svc::compile_snapshot(s4, index, config_->window_begin + 60, 5);

  // Byte-identical responses for the same batch prove identical artifacts.
  std::vector<svc::Query> batch;
  for (const net::Prefix& p : probe_prefixes(index)) {
    batch.push_back(svc::Query{config_->window_begin + 60, p, svc::kAllFields});
  }
  svc::Server server_seq(seq);
  svc::Server server_par(par, &pool);
  std::string request = svc::encode_query_request(batch);
  EXPECT_EQ(server_seq.serve(request), server_par.serve(request));
}

TEST_F(ServiceWorldTest, ClientServerLoopbackRoundtrip) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  auto snap = svc::compile_snapshot(s, index, d, 3);

  svc::Server server;
  svc::LoopbackConnection conn(server);
  svc::Client client(conn);

  // Before the first publish every query is a server error.
  EXPECT_THROW(client.lookup(d, P("10.0.0.0/8")), std::runtime_error);

  server.publish(snap);
  std::vector<svc::Query> batch;
  for (const net::Prefix& p : probe_prefixes(index)) {
    batch.push_back(svc::Query{d, p, svc::kAllFields});
  }
  svc::QueryResponse response = client.query(batch);
  EXPECT_EQ(response.snapshot_version, 3u);
  EXPECT_EQ(response.date, d);
  ASSERT_EQ(response.answers.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(response.answers[i], snap->lookup(batch[i].prefix, svc::kAllFields));
  }

  // A query for another date is answered, flagged, and field-less.
  svc::Answer wrong = client.lookup(d + 1, P("10.0.0.0/8"));
  EXPECT_EQ(wrong.status, static_cast<uint8_t>(svc::QueryStatus::kWrongDate));
  EXPECT_EQ(wrong.fields, 0);
}

TEST_F(ServiceWorldTest, ClientSplitsOversizedBatches) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  svc::Server server(svc::compile_snapshot(s, index, d, 1));
  svc::LoopbackConnection conn(server);
  svc::Client client(conn);

  std::vector<svc::Query> batch(svc::kMaxBatch + 100,
                                svc::Query{d, P("10.0.0.0/8"), svc::kAllFields});
  svc::QueryResponse response = client.query(batch);
  ASSERT_EQ(response.answers.size(), batch.size());
  for (size_t i = 1; i < response.answers.size(); ++i) {
    EXPECT_EQ(response.answers[i], response.answers[0]);
  }
  EXPECT_EQ(server.stats().requests, 2u);  // two frames on the wire
}

TEST_F(ServiceWorldTest, StatsCountersTrackTraffic) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  auto snap = svc::compile_snapshot(s, index, d, 1);

  svc::Server server;
  svc::LoopbackConnection conn(server);
  svc::Client client(conn);
  server.publish(snap);
  server.publish(snap);  // second publish = one reload

  client.lookup(d, P("10.0.0.0/8"), svc::field_bit(svc::Field::kRouted));
  client.lookup(d, P("10.0.0.0/8"),
                svc::field_bit(svc::Field::kRouted) |
                    svc::field_bit(svc::Field::kDrop));
  // One garbage frame: counted malformed, answered with an error frame.
  std::string garbage = "DL";
  garbage += '\x01';
  garbage += '\x05';  // kError from a client is unexpected
  garbage.append(4, '\0');
  std::string error_response = server.serve(garbage);
  EXPECT_EQ(svc::decode_header(error_response).type, svc::FrameType::kError);

  svc::ServerStats stats = client.stats();
  EXPECT_EQ(stats.requests, 4u);  // 2 lookups + garbage + the stats frame
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.snapshot_version, 1u);
  EXPECT_EQ(stats.field_lookups[static_cast<size_t>(svc::Field::kRouted)], 2u);
  EXPECT_EQ(stats.field_lookups[static_cast<size_t>(svc::Field::kDrop)], 1u);
  EXPECT_EQ(stats.field_lookups[static_cast<size_t>(svc::Field::kRov)], 0u);
  uint64_t histogram_total = 0;
  for (uint64_t bucket : stats.latency_ns_buckets) histogram_total += bucket;
  EXPECT_EQ(histogram_total, 3u);  // every served frame before this one
}

TEST_F(ServiceWorldTest, TcpRoundtripMatchesLoopback) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 60;
  auto snap = svc::compile_snapshot(s, index, d, 9);

  svc::Server server(snap);
  svc::TcpServer tcp(server);
  ASSERT_GT(tcp.port(), 0);

  svc::TcpClientConnection conn("127.0.0.1", tcp.port(), svc::frame_size);
  svc::Client client(conn);
  svc::LoopbackConnection loop(server);
  svc::Client reference(loop);

  std::vector<svc::Query> batch;
  for (const net::Prefix& p : probe_prefixes(index)) {
    batch.push_back(svc::Query{d, p, svc::kAllFields});
  }
  EXPECT_EQ(client.query(batch), reference.query(batch));
  EXPECT_GE(client.stats().requests, 2u);
  tcp.stop();
  EXPECT_EQ(tcp.connections_accepted(), 1u);
}

TEST_F(ServiceWorldTest, WhoisRidesTheSameTransport) {
  irr::WhoisServer whois(world_->irr, config_->window_begin + 60);
  svc::WhoisService service(whois);
  svc::TcpServer tcp(service);

  svc::TcpClientConnection conn("127.0.0.1", tcp.port(),
                                svc::whois_response_size);
  // Query an origin that the generated world is guaranteed to register.
  std::string direct;
  net::Asn origin(0);
  for (const irr::Registration& reg : world_->irr.all_history()) {
    if (reg.live_on(config_->window_begin + 60)) {
      origin = reg.object.origin;
      break;
    }
  }
  direct = whois.handle("!gAS" + std::to_string(origin.value()));
  EXPECT_EQ(conn.roundtrip("!gAS" + std::to_string(origin.value()) + "\n"),
            direct);
  // The satellite fix, observed through the service path.
  EXPECT_EQ(conn.roundtrip("!gAS4294967296\n"), "F bad ASN\n");
  EXPECT_EQ(conn.roundtrip("!gASbanana\n"), "F bad ASN\n");

  // Loopback serves the same protocol.
  svc::LoopbackConnection loop(service);
  EXPECT_EQ(loop.roundtrip("!gASbanana\n"), "F bad ASN\n");
}

TEST(WhoisFraming, ResponseSizeDelimitsEveryFrameShape) {
  EXPECT_EQ(svc::whois_response_size(""), 0u);
  EXPECT_EQ(svc::whois_response_size("C"), 0u);
  EXPECT_EQ(svc::whois_response_size("C\n"), 2u);
  EXPECT_EQ(svc::whois_response_size("D\nC\n"), 2u);
  EXPECT_EQ(svc::whois_response_size("F bad ASN\n"), 10u);
  EXPECT_EQ(svc::whois_response_size("F bad"), 0u);
  std::string framed = "A5\nhelloC\n";
  EXPECT_EQ(svc::whois_response_size(framed), framed.size());
  EXPECT_EQ(svc::whois_response_size(framed.substr(0, 6)), 0u);
  EXPECT_THROW(svc::whois_response_size("Zmystery\n"), ParseError);
  EXPECT_THROW(svc::whois_response_size("A5\nhelloXX"), ParseError);
  EXPECT_THROW(svc::whois_response_size("Abanana\n"), ParseError);
}

TEST(WhoisFraming, OverlongLinesAreRejectedNotBuffered) {
  irr::Database db;
  irr::WhoisServer whois(db, net::Date::parse("2021-01-01"));
  svc::WhoisService service(whois);
  std::string line(svc::WhoisService::kMaxLine, 'x');
  EXPECT_THROW(service.message_size(line), ParseError);
  EXPECT_EQ(service.malformed_response(line), "F line too long\n");
  EXPECT_EQ(service.message_size("!gAS1\n"), 6u);
}

}  // namespace
}  // namespace droplens
