#include <gtest/gtest.h>

#include "net/date.hpp"
#include "util/error.hpp"

namespace droplens::net {
namespace {

TEST(Date, EpochIsZero) {
  EXPECT_EQ(Date::from_ymd(1970, 1, 1).days(), 0);
  EXPECT_EQ(Date(0).to_string(), "1970-01-01");
}

TEST(Date, KnownDates) {
  // The paper's study window endpoints.
  EXPECT_EQ(Date::from_ymd(2019, 6, 5).to_string(), "2019-06-05");
  EXPECT_EQ(Date::from_ymd(2022, 3, 30) - Date::from_ymd(2019, 6, 5), 1029);
}

TEST(Date, ParseBothForms) {
  EXPECT_EQ(Date::parse("2020-09-02"), Date::from_ymd(2020, 9, 2));
  EXPECT_EQ(Date::parse("20200902"), Date::from_ymd(2020, 9, 2));
  EXPECT_THROW(Date::parse("2020/09/02"), ParseError);
  EXPECT_THROW(Date::parse("2020-13-01"), ParseError);
  EXPECT_THROW(Date::parse("2020-02-30"), ParseError);
  EXPECT_THROW(Date::parse(""), ParseError);
}

TEST(Date, LeapYears) {
  EXPECT_NO_THROW(Date::from_ymd(2020, 2, 29));
  EXPECT_THROW(Date::from_ymd(2021, 2, 29), InvariantError);
  EXPECT_NO_THROW(Date::from_ymd(2000, 2, 29));  // divisible by 400
  EXPECT_THROW(Date::from_ymd(1900, 2, 29), InvariantError);
}

TEST(Date, Arithmetic) {
  Date d = Date::from_ymd(2020, 12, 31);
  EXPECT_EQ((d + 1).to_string(), "2021-01-01");
  EXPECT_EQ((d - 366).to_string(), "2019-12-31");
  EXPECT_EQ((d + 1) - d, 1);
}

TEST(Date, RoundTripSweep) {
  // Every day across several decades converts days -> ymd -> days exactly.
  Date start = Date::from_ymd(1999, 1, 1);
  Date end = Date::from_ymd(2031, 1, 1);
  for (Date d = start; d < end; d += 1) {
    Date::Ymd c = d.ymd();
    EXPECT_EQ(Date::from_ymd(c.year, c.month, c.day), d);
  }
}

TEST(DateRange, Contains) {
  DateRange r{Date(10), Date(20)};
  EXPECT_FALSE(r.contains(Date(9)));
  EXPECT_TRUE(r.contains(Date(10)));
  EXPECT_TRUE(r.contains(Date(19)));
  EXPECT_FALSE(r.contains(Date(20)));  // half-open
  EXPECT_EQ(r.length(), 10);
}

TEST(DateRange, UnboundedMeansStillOpen) {
  DateRange r{Date(10), DateRange::unbounded()};
  EXPECT_TRUE(r.contains(Date(1000000)));
}

}  // namespace
}  // namespace droplens::net
