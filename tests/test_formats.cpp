// Serialization formats: the DROP feed, roas.csv, and TABLE_DUMP-lite.
#include <gtest/gtest.h>

#include "bgp/table_dump.hpp"
#include "drop/feed.hpp"
#include "rpki/roa_csv.hpp"
#include "util/error.hpp"

namespace droplens {
namespace {

net::Date D(const char* s) { return net::Date::parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(DropFeed, WriteParseRoundTrip) {
  drop::DropList list;
  list.add(P("10.0.0.0/24"), D("2020-01-01"), "SBL100");
  list.add(P("11.0.0.0/22"), D("2020-02-01"));
  list.add(P("12.0.0.0/24"), D("2020-03-01"), "SBL102");
  list.remove(P("12.0.0.0/24"), D("2020-04-01"));

  std::string feed = write_drop_feed(list, D("2020-03-15"));
  EXPECT_NE(feed.find("; Spamhaus DROP List 2020-03-15"), std::string::npos);
  auto entries = drop::parse_drop_feed(feed);
  ASSERT_EQ(entries.size(), 3u);  // all three listed on 2020-03-15
  EXPECT_EQ(entries[0].prefix, P("10.0.0.0/24"));
  EXPECT_EQ(entries[0].sbl_id, "SBL100");
  EXPECT_EQ(entries[1].sbl_id, "");

  // After the removal only two remain.
  EXPECT_EQ(drop::parse_drop_feed(write_drop_feed(list, D("2020-05-01")))
                .size(),
            2u);
}

TEST(DropFeed, ParserSkipsCommentsAndRejectsJunk) {
  auto entries = drop::parse_drop_feed(
      "; header\n# other comment\n\n192.0.2.0/24 ; SBL1\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_THROW(drop::parse_drop_feed("not-a-prefix ; SBL2\n"), ParseError);
}

TEST(DropFeed, FromDailyFeedsRecoversAddRemoveDates) {
  // Three snapshots: prefix A throughout, B appears day 2, gone day 3.
  std::vector<std::pair<net::Date, std::vector<drop::FeedEntry>>> days = {
      {D("2020-01-01"), {{P("10.0.0.0/24"), "SBL1"}}},
      {D("2020-01-02"),
       {{P("10.0.0.0/24"), "SBL1"}, {P("11.0.0.0/24"), "SBL2"}}},
      {D("2020-01-03"), {{P("10.0.0.0/24"), "SBL1"}}},
  };
  drop::DropList list = drop::from_daily_feeds(days);
  EXPECT_EQ(*list.first_listed(P("10.0.0.0/24")), D("2020-01-01"));
  EXPECT_EQ(*list.first_listed(P("11.0.0.0/24")), D("2020-01-02"));
  EXPECT_TRUE(list.listed_on(P("11.0.0.0/24"), D("2020-01-02")));
  EXPECT_FALSE(list.listed_on(P("11.0.0.0/24"), D("2020-01-03")));
  EXPECT_TRUE(list.listed_on(P("10.0.0.0/24"), D("2020-01-03")));
}

TEST(RoaCsv, WriteParseRoundTrip) {
  rpki::RoaArchive archive;
  rpki::Roa a(P("10.0.0.0/16"), net::Asn(64500), rpki::Tal::kRipe, 24);
  rpki::Roa b(P("41.0.0.0/8"), net::Asn::as0(), rpki::Tal::kApnicAs0);
  archive.publish(a, D("2020-01-01"));
  archive.publish(b, D("2021-01-01"));

  std::string csv =
      rpki::write_roa_csv(archive, D("2021-06-01"), rpki::TalSet::all());
  auto records = rpki::parse_roa_csv(csv);
  ASSERT_EQ(records.size(), 2u);

  rpki::RoaArchive rebuilt;
  EXPECT_EQ(rpki::load_roa_csv(rebuilt, csv), 2u);
  EXPECT_EQ(rebuilt.validate_route(P("10.0.3.0/24"), net::Asn(64500),
                                   D("2021-06-01")),
            rpki::Validity::kValid);
  EXPECT_EQ(rebuilt.validate_route(P("41.2.0.0/16"), net::Asn(1),
                                   D("2021-06-01"), rpki::TalSet::all()),
            rpki::Validity::kInvalid);
}

TEST(RoaCsv, RevokedRoasCarryTheirEndDate) {
  rpki::RoaArchive archive;
  rpki::Roa roa(P("10.0.0.0/16"), net::Asn(1), rpki::Tal::kArin);
  archive.publish(roa, D("2020-01-01"));

  std::string csv = rpki::write_roa_csv(archive, D("2020-06-01"));
  EXPECT_NE(csv.find("never"), std::string::npos);

  archive.revoke(roa, D("2020-09-01"));
  // Export while live, but after loading the revocation date must apply.
  rpki::RoaArchive rebuilt;
  // Hand-craft a bounded row.
  rpki::load_roa_csv(
      rebuilt,
      "rsync://rpki.arin.net/repository/0.roa,AS1,10.0.0.0/16,16,"
      "2020-01-01,2020-09-01\n");
  EXPECT_TRUE(rebuilt.signed_on(P("10.0.0.0/16"), D("2020-08-31")));
  EXPECT_FALSE(rebuilt.signed_on(P("10.0.0.0/16"), D("2020-09-01")));
}

TEST(RoaCsv, RejectsMalformedRows) {
  EXPECT_THROW(rpki::parse_roa_csv("rsync://x/0.roa,AS1,10.0.0.0/16\n"),
               ParseError);
  EXPECT_THROW(
      rpki::parse_roa_csv(
          "rsync://unknown.example/0.roa,AS1,10.0.0.0/16,16,2020-01-01,never\n"),
      ParseError);
  EXPECT_THROW(
      rpki::parse_roa_csv(
          "rsync://rpki.ripe.net/0.roa,banana,10.0.0.0/16,16,2020-01-01,never\n"),
      ParseError);
  EXPECT_THROW(
      rpki::parse_roa_csv(
          "rsync://rpki.ripe.net/0.roa,AS1,10.0.0.0/16,8,2020-01-01,never\n"),
      ParseError);  // maxLength < prefix length
}

TEST(TableDump, WriteParseRoundTrip) {
  bgp::CollectorFleet fleet;
  uint32_t c = fleet.add_collector("rv0");
  bgp::PeerId peer = fleet.add_peer(c, net::Asn(64512), true, nullptr,
                                    "peer42");
  fleet.announce(P("10.0.0.0/8"), bgp::AsPath{net::Asn(3356), net::Asn(15169)},
                 {D("2020-01-01"), net::DateRange::unbounded()});
  fleet.announce(P("192.0.2.0/24"), bgp::AsPath{net::Asn(64500)},
                 {D("2021-01-01"), D("2021-06-01")});

  std::string dump = bgp::write_table_dump(fleet, peer, D("2021-03-01"));
  auto entries = bgp::parse_table_dump(dump);
  ASSERT_EQ(entries.size(), 2u);
  for (const bgp::TableDumpEntry& e : entries) {
    EXPECT_EQ(e.peer_name, "peer42");
    EXPECT_EQ(e.peer_asn, net::Asn(64512));
    EXPECT_EQ(e.date, D("2021-03-01"));
  }
  // After the withdrawal only the /8 remains.
  EXPECT_EQ(
      bgp::parse_table_dump(bgp::write_table_dump(fleet, peer, D("2021-07-01")))
          .size(),
      1u);
}

TEST(TableDump, RejectsMalformed) {
  EXPECT_THROW(bgp::parse_table_dump("TABLE_DUMP2|2020-01-01|B|p|1\n"),
               ParseError);
  EXPECT_THROW(
      bgp::parse_table_dump("NOT_A_DUMP|2020-01-01|B|p|1|10.0.0.0/8|1|IGP\n"),
      ParseError);
  EXPECT_THROW(
      bgp::parse_table_dump("TABLE_DUMP2|2020-01-01|B|p|1|10.0.0.0/8||IGP\n"),
      ParseError);
}

}  // namespace
}  // namespace droplens
