// On-disk snapshot persistence (svc/snapshot_io.hpp, svc/snapshot_store.hpp).
//
// Four contracts, each with its own section below:
//   1. Fidelity — compile → save → mmap-load answers every lookup
//      identically to the in-memory snapshot, across ≥30 dates, degraded
//      days included, and the writer is byte-deterministic (repeat saves
//      and every thread count produce identical bytes).
//   2. Hostility — corrupted files (truncations at every length, every
//      single-bit flip, FaultInjector's archive defects, and targeted
//      header/payload patches) are rejected with a typed
//      SnapshotFormatError; the loader never crashes and never allocates
//      payload for oversized declared counts. Run this binary under both
//      sanitizer presets (see tests/CMakeLists.txt).
//   3. Format pin — a checked-in golden .dls fixture plus raw-offset
//      assertions freeze format version 1; accidental layout drift fails
//      here before it ships.
//   4. Versioning — the SnapshotStore's monotonic counter never stamps two
//      distinct snapshot objects with one version, across compiles, mmap
//      loads, evictions, and rescans.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "core/snapshot_cache.hpp"
#include "core/study.hpp"
#include "net/date.hpp"
#include "net/interval_set.hpp"
#include "net/prefix.hpp"
#include "net/segment_map.hpp"
#include "sim/fault_injector.hpp"
#include "sim/generator.hpp"
#include "sim/rng.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_io.hpp"
#include "svc/snapshot_store.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace droplens {
namespace {

namespace fs = std::filesystem;

net::Prefix P(const char* s) { return net::Prefix::parse(s); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/droplens_persist_XXXXXX";
    const char* p = mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    dir_ = p ? p : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

template <typename T>
T read_le(const std::string& bytes, size_t offset) {
  T v{};
  EXPECT_LE(offset + sizeof(T), bytes.size());
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

template <typename T>
void poke(std::string& bytes, size_t offset, T v) {
  ASSERT_LE(offset + sizeof(T), bytes.size());
  std::memcpy(bytes.data() + offset, &v, sizeof(T));
}

// Recompute header_crc32c after a test patched header bytes — the same
// zero-the-field-then-CRC rule the writer uses, so a patched file fails at
// the stage under test instead of at the CRC gate.
void reseal_header(std::string& bytes) {
  svc::SnapshotHeader h{};
  ASSERT_GE(bytes.size(), sizeof h);
  std::memcpy(&h, bytes.data(), sizeof h);
  h.header_crc32c = 0;
  poke<uint32_t>(bytes, offsetof(svc::SnapshotHeader, header_crc32c),
                 util::crc32c(&h, sizeof h));
}

void reseal_segment(std::string& bytes, size_t seg) {
  svc::SnapshotHeader h{};
  ASSERT_GE(bytes.size(), sizeof h);
  std::memcpy(&h, bytes.data(), sizeof h);
  const svc::SegmentDesc& sd = h.segments[seg];
  ASSERT_LE(sd.offset + sd.length, bytes.size());
  poke<uint32_t>(bytes,
                 offsetof(svc::SnapshotHeader, segments) +
                     seg * sizeof(svc::SegmentDesc) +
                     offsetof(svc::SegmentDesc, crc32c),
                 util::crc32c(bytes.data() + sd.offset, sd.length));
  // The segment table lives inside the header, so patching a segment CRC
  // invalidates the header CRC; reseal that too.
  reseal_header(bytes);
}

// Write `bytes` and load them; the load must fail with a typed error.
// Returns the code (nullopt plus a test failure if the load accepted).
std::optional<svc::SnapshotIoError> reject_code(const std::string& path,
                                                const std::string& bytes) {
  write_file(path, bytes);
  try {
    auto snap = svc::load_snapshot(path, 1);
    ADD_FAILURE() << "loader accepted corrupted bytes (" << bytes.size()
                  << " bytes)";
    (void)snap;
    return std::nullopt;
  } catch (const svc::SnapshotFormatError& e) {
    return e.code();
  }
  // Any other exception type escapes and fails the test — that is the
  // point: hostile bytes may only produce SnapshotFormatError.
}

std::vector<net::Prefix> slash8_sweep() {
  std::vector<net::Prefix> probes;
  for (uint32_t octet = 0; octet < 256; ++octet) {
    probes.push_back(net::Prefix(net::Ipv4(octet << 24), 8));
  }
  return probes;
}

std::vector<net::Prefix> fuzz_prefixes(sim::Rng& rng, size_t n) {
  std::vector<net::Prefix> probes;
  probes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t addr = static_cast<uint32_t>(rng.next());
    int len = static_cast<int>(rng.range(0, 32));
    probes.push_back(net::Prefix::containing(net::Ipv4(addr), len));
  }
  return probes;
}

void expect_identical_answers(const svc::Snapshot& a, const svc::Snapshot& b,
                              const std::vector<net::Prefix>& probes) {
  for (const net::Prefix& p : probes) {
    svc::Answer wa = a.lookup(p, svc::kAllFields);
    svc::Answer wb = b.lookup(p, svc::kAllFields);
    ASSERT_EQ(wa, wb) << p.to_string();
    // Partial masks go through the same field gates; spot-check one.
    uint8_t mask = svc::field_bit(svc::Field::kDrop) |
                   svc::field_bit(svc::Field::kRov);
    ASSERT_EQ(a.lookup(p, mask), b.lookup(p, mask)) << p.to_string();
  }
}

// ---------------------------------------------------------------------------
// crc32c — the checksum everything above rests on.

TEST(Crc32c, KnownAnswers) {
  // RFC 3720 B.4 check value.
  EXPECT_EQ(util::crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(util::crc32c("", 0), 0u);
  const char iscsi_zeros[32] = {};
  EXPECT_EQ(util::crc32c(iscsi_zeros, 32), 0x8A9136AAu);
}

TEST(Crc32c, SeedChainsIncrementally) {
  const std::string whole = "stop, drop, and roa";
  for (size_t split = 0; split <= whole.size(); ++split) {
    uint32_t part = util::crc32c(whole.data(), split);
    uint32_t chained =
        util::crc32c(whole.data() + split, whole.size() - split, part);
    EXPECT_EQ(chained, util::crc32c(whole.data(), whole.size())) << split;
  }
}

// ---------------------------------------------------------------------------
// Zero-copy views: the net-layer primitives the mmap loader builds on.

TEST(IntervalSetView, AnswersIdenticallyAndDetachesOnMutation) {
  net::IntervalSet owned;
  owned.insert(P("10.0.0.0/8"));
  owned.insert(P("192.168.0.0/16"));
  owned.insert(P("203.0.113.0/24"));

  net::IntervalSet view = net::IntervalSet::view(owned.intervals());
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(owned.is_view());
  EXPECT_EQ(view, owned);
  EXPECT_EQ(view.size(), owned.size());
  for (const char* s : {"10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8",
                        "192.168.5.0/24", "203.0.113.0/24", "0.0.0.0/0"}) {
    EXPECT_EQ(view.covers(P(s)), owned.covers(P(s))) << s;
    EXPECT_EQ(view.intersects(P(s)), owned.intersects(P(s))) << s;
  }
  EXPECT_EQ(view.contains(net::Ipv4(10u << 24)), true);
  EXPECT_EQ(view.contains(net::Ipv4(11u << 24)), false);

  // A copy of a view is still a view over the same storage.
  net::IntervalSet copy = view;
  EXPECT_TRUE(copy.is_view());

  // Mutation detaches: the view becomes owned, external storage untouched.
  copy.insert(P("11.0.0.0/8"));
  EXPECT_FALSE(copy.is_view());
  EXPECT_TRUE(copy.covers(P("11.0.0.0/8")));
  EXPECT_FALSE(view.covers(P("11.0.0.0/8")));
  EXPECT_EQ(owned.interval_count(), 3u);
}

TEST(IntervalSetView, IsCanonicalRejectsEveryInvariantViolation) {
  using IV = net::IntervalSet::Interval;
  auto ok = [](std::vector<IV> v) {
    return net::IntervalSet::is_canonical(v);
  };
  EXPECT_TRUE(ok({}));
  EXPECT_TRUE(ok({{0, 1}}));
  EXPECT_TRUE(ok({{0, 10}, {20, 1ull << 32}}));
  EXPECT_FALSE(ok({{20, 30}, {0, 10}}));       // unsorted
  EXPECT_FALSE(ok({{0, 10}, {5, 20}}));        // overlapping
  EXPECT_FALSE(ok({{0, 10}, {10, 20}}));       // adjacent (must coalesce)
  EXPECT_FALSE(ok({{10, 10}}));                // empty interval
  EXPECT_FALSE(ok({{10, 5}}));                 // inverted
  EXPECT_FALSE(ok({{0, (1ull << 32) + 1}}));   // beyond the IPv4 space
}

TEST(SegmentMapView, AnswersIdenticallyAndRejectsNonCanonical) {
  net::SegmentMap<uint8_t> owned;
  owned.assign(P("10.0.0.0/8"), 1);
  owned.assign(P("10.1.0.0/16"), 2);
  owned.assign(P("172.16.0.0/12"), 3);
  owned.finalize();

  net::SegmentMap<uint8_t> view = net::SegmentMap<uint8_t>::view(
      owned.segments());
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.segment_count(), owned.segment_count());
  for (const char* s : {"10.0.0.0/8", "10.1.2.0/24", "10.200.0.0/16",
                        "172.16.0.0/12", "8.0.0.0/8"}) {
    const uint8_t* a = owned.lookup(P(s));
    const uint8_t* b = view.lookup(P(s));
    ASSERT_EQ(a == nullptr, b == nullptr) << s;
    if (a) EXPECT_EQ(*a, *b) << s;
  }

  using Seg = net::SegmentMap<uint8_t>::Segment;
  auto ok = [](std::vector<Seg> v) {
    return net::SegmentMap<uint8_t>::is_canonical(v);
  };
  EXPECT_TRUE(ok({}));
  EXPECT_TRUE(ok({{0, 10, 1}, {10, 20, 2}}));  // adjacent distinct values ok
  EXPECT_TRUE(ok({{0, 10, 1}, {10, 20, 1}}));  // maximal coalescing optional
  EXPECT_FALSE(ok({{10, 20, 1}, {0, 5, 2}}));  // unsorted
  EXPECT_FALSE(ok({{0, 10, 1}, {5, 20, 2}}));  // overlapping
  EXPECT_FALSE(ok({{5, 5, 1}}));               // empty
  EXPECT_FALSE(ok({{0, (1ull << 32) + 1, 1}}));
}

// ---------------------------------------------------------------------------
// The golden snapshot: hand-assembled parts, no generator involved, so its
// serialized bytes depend on nothing but the format itself.

svc::Snapshot make_golden_snapshot() {
  net::IntervalSet routed;
  routed.insert(P("1.0.0.0/8"));
  routed.insert(P("9.9.0.0/16"));
  routed.insert(P("203.0.113.0/24"));
  net::IntervalSet as0;  // deliberately empty: zero-length segments happen
  net::IntervalSet irr;
  irr.insert(P("9.9.8.0/22"));
  net::IntervalSet allocated;
  allocated.insert(P("1.0.0.0/8"));
  allocated.insert(P("9.0.0.0/8"));
  allocated.insert(P("203.0.0.0/8"));

  net::SegmentMap<svc::Snapshot::DropInfo> drop;
  drop.assign(P("1.2.3.0/24"), svc::Snapshot::DropInfo{0x21, 1});
  drop.assign(P("9.9.9.0/24"), svc::Snapshot::DropInfo{0x03, 0});
  drop.finalize();
  net::SegmentMap<uint8_t> rov;
  rov.assign(P("1.0.0.0/8"), 2);        // RovStatus::kNotFound
  rov.assign(P("1.2.0.0/16"), 1);       // RovStatus::kInvalid
  rov.assign(P("203.0.113.0/24"), 0);   // RovStatus::kValid
  rov.finalize();
  net::SegmentMap<uint8_t> rir;
  rir.assign(P("1.0.0.0/8"), 0);
  rir.assign(P("9.0.0.0/8"), 3);
  rir.assign(P("203.0.0.0/8"), 4);
  rir.finalize();

  return svc::Snapshot(7, net::Date::parse("2019-08-04"), 0x05,
                       std::move(routed), std::move(as0), std::move(irr),
                       std::move(allocated), std::move(drop), std::move(rov),
                       std::move(rir));
}

std::vector<net::Prefix> golden_probes() {
  std::vector<net::Prefix> probes = {
      P("1.0.0.0/8"),     P("1.2.3.0/24"),   P("1.2.3.4/32"),
      P("1.2.0.0/16"),    P("9.9.9.0/24"),   P("9.9.8.0/22"),
      P("9.0.0.0/8"),     P("203.0.113.0/24"), P("203.0.113.9/32"),
      P("203.0.0.0/8"),   P("8.8.8.0/24"),   P("0.0.0.0/0"),
      P("255.255.255.255/32"),
  };
  return probes;
}

TEST(SnapshotGolden, SerializedBytesMatchCheckedInFixture) {
  const svc::Snapshot golden = make_golden_snapshot();
  const std::string bytes = svc::serialize_snapshot(golden);
  const std::string fixture_path = DROPLENS_GOLDEN_SNAPSHOT;

  if (std::getenv("DROPLENS_UPDATE_GOLDEN") != nullptr) {
    write_file(fixture_path, bytes);
    GTEST_SKIP() << "regenerated " << fixture_path << " (" << bytes.size()
                 << " bytes)";
  }

  const std::string fixture = read_file(fixture_path);
  ASSERT_EQ(bytes.size(), fixture.size())
      << "serialized size drifted from the checked-in fixture; if the "
         "format changed on purpose, bump kSnapshotFormatVersion and rerun "
         "with DROPLENS_UPDATE_GOLDEN=1";
  ASSERT_TRUE(bytes == fixture)
      << "serialized bytes drifted from the checked-in fixture at offset "
      << std::distance(
             fixture.begin(),
             std::mismatch(fixture.begin(), fixture.end(), bytes.begin())
                 .first);
}

TEST(SnapshotGolden, RawOffsetsPinTheFormat) {
  const svc::Snapshot golden = make_golden_snapshot();
  const std::string bytes = svc::serialize_snapshot(golden);

  ASSERT_GE(bytes.size(), sizeof(svc::SnapshotHeader));
  EXPECT_EQ(std::memcmp(bytes.data(), svc::kSnapshotMagic, 8), 0);
  EXPECT_EQ(read_le<uint32_t>(bytes, 8), svc::kSnapshotFormatVersion);
  EXPECT_EQ(read_le<int32_t>(bytes, 16),
            net::Date::parse("2019-08-04").days());
  EXPECT_EQ(read_le<uint8_t>(bytes, 20), 0x05);  // degraded bits
  EXPECT_EQ(read_le<uint8_t>(bytes, 21), 0);     // reserved, always zero
  EXPECT_EQ(read_le<uint8_t>(bytes, 22), 0);
  EXPECT_EQ(read_le<uint8_t>(bytes, 23), 0);
  EXPECT_EQ(read_le<uint64_t>(bytes, 24), 7u);   // writer_version
  EXPECT_EQ(read_le<uint64_t>(bytes, 32), bytes.size());

  // Segment table: routed starts right after the header; strict sequential
  // layout; Interval segments are 16-byte elements, valued maps 24.
  uint64_t cursor = sizeof(svc::SnapshotHeader);
  for (size_t s = 0; s < svc::kSnapshotSegmentCount; ++s) {
    size_t at = 40 + s * sizeof(svc::SegmentDesc);
    uint64_t offset = read_le<uint64_t>(bytes, at);
    uint64_t length = read_le<uint64_t>(bytes, at + 8);
    uint32_t elem = read_le<uint32_t>(bytes, at + 20);
    EXPECT_EQ(offset, cursor) << "segment " << s;
    EXPECT_EQ(elem, s < 4 ? 16u : 24u) << "segment " << s;
    EXPECT_EQ(length % elem, 0u) << "segment " << s;
    cursor += length;
  }
  EXPECT_EQ(cursor, bytes.size());

  // First routed interval: 1.0.0.0/8 as little-endian u64 begin/end.
  EXPECT_EQ(read_le<uint64_t>(bytes, 208), uint64_t{1} << 24);
  EXPECT_EQ(read_le<uint64_t>(bytes, 216), uint64_t{2} << 24);

  // The header CRC actually covers the header: recomputing it over the
  // zeroed-field bytes must reproduce the stored value.
  std::string resealed = bytes;
  reseal_header(resealed);
  EXPECT_EQ(read_le<uint32_t>(resealed, 12), read_le<uint32_t>(bytes, 12));
}

TEST(SnapshotGolden, FixtureLoadsAndAnswersMatchHandBuilt) {
  const std::string fixture_path = DROPLENS_GOLDEN_SNAPSHOT;
  if (std::getenv("DROPLENS_UPDATE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "fixture being regenerated by the byte test";
  }
  const svc::Snapshot golden = make_golden_snapshot();
  std::shared_ptr<const svc::Snapshot> loaded =
      svc::load_snapshot(fixture_path, 42);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->version(), 42u)  // caller-assigned, not the file's 7
      << "loader must report the caller's version, not writer_version";
  EXPECT_EQ(loaded->date(), golden.date());
  EXPECT_EQ(loaded->degraded(), golden.degraded());
  EXPECT_TRUE(loaded->routed().is_view());
  EXPECT_TRUE(loaded->drop().is_view());
  expect_identical_answers(golden, *loaded, golden_probes());

  svc::SnapshotHeader h = svc::read_snapshot_header(fixture_path);
  EXPECT_EQ(h.writer_version, 7u);
  EXPECT_EQ(h.degraded, 0x05);
  EXPECT_EQ(net::Date(h.date_days), golden.date());
}

TEST(SnapshotGolden, FixtureRebuildsFastIndexAndBatchMatchesReference) {
  // The fixture predates the Eytzinger index, which proves the invariant
  // that matters: the index is a load-time permutation overlay rebuilt from
  // the canonical arrays, never part of the format. A pre-index `.dls` must
  // load with every fast index live, answer batched queries byte-identically
  // to the plain upper_bound reference path, and reserialize to the exact
  // fixture bytes.
  const std::string fixture_path = DROPLENS_GOLDEN_SNAPSHOT;
  if (std::getenv("DROPLENS_UPDATE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "fixture being regenerated by the byte test";
  }
  // Version 7 matches the fixture's writer_version so the reserialize check
  // below can demand exact bytes (the header embeds the writer's version).
  std::shared_ptr<const svc::Snapshot> loaded =
      svc::load_snapshot(fixture_path, 7);
  EXPECT_TRUE(loaded->routed().has_fast_index());
  EXPECT_TRUE(loaded->irr().has_fast_index());
  EXPECT_TRUE(loaded->allocated().has_fast_index());
  EXPECT_TRUE(loaded->drop().has_fast_index());
  EXPECT_TRUE(loaded->rov().has_fast_index());
  EXPECT_TRUE(loaded->rir().has_fast_index());
  // as0 is deliberately empty in the golden world; an empty index still
  // counts as built and answers through the same descent.
  EXPECT_TRUE(loaded->as0().has_fast_index());

  const std::vector<net::Prefix> probes = golden_probes();
  const std::vector<uint8_t> fields(probes.size(), svc::kAllFields);
  std::vector<svc::Answer> batched(probes.size());
  loaded->lookup_batch(probes, fields, batched);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batched[i], loaded->lookup_reference(probes[i], svc::kAllFields))
        << probes[i].to_string();
    EXPECT_EQ(batched[i], loaded->lookup(probes[i], svc::kAllFields))
        << probes[i].to_string();
  }

  EXPECT_EQ(svc::serialize_snapshot(*loaded), read_file(fixture_path))
      << "the acceleration index must never leak into the on-disk bytes";
}

// ---------------------------------------------------------------------------
// Corruption fuzzing. All of it runs against the small hand-built snapshot,
// so exhaustive per-byte sweeps stay cheap; the world-scale files go through
// the same loader in the round-trip section.

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bytes_ = svc::serialize_snapshot(make_golden_snapshot());
    path_ = tmp_.path("corrupt.dls");
    header_ = svc::SnapshotHeader{};
    std::memcpy(&header_, bytes_.data(), sizeof header_);
  }

  size_t seg_desc_at(size_t seg, size_t field_offset) const {
    return offsetof(svc::SnapshotHeader, segments) +
           seg * sizeof(svc::SegmentDesc) + field_offset;
  }

  TempDir tmp_;
  std::string bytes_;
  std::string path_;
  svc::SnapshotHeader header_;
};

TEST_F(SnapshotCorruptionTest, EveryTruncationLengthRejectsTyped) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::optional<svc::SnapshotIoError> code =
        reject_code(path_, bytes_.substr(0, len));
    ASSERT_TRUE(code.has_value()) << "accepted truncation to " << len;
    if (len < sizeof(svc::SnapshotHeader)) {
      EXPECT_EQ(*code, svc::SnapshotIoError::kTruncated) << len;
    } else {
      // Payload truncations surface as a declared-vs-actual length mismatch.
      EXPECT_EQ(*code, svc::SnapshotIoError::kTruncated) << len;
    }
  }
}

TEST_F(SnapshotCorruptionTest, EverySingleBitFlipRejectsTyped) {
  // Every byte of the file is covered by the header CRC or a segment CRC,
  // so no single-bit flip may survive. (Flips that also break an earlier
  // gate — magic, version, layout — are caught there; all are typed.)
  for (size_t byte = 0; byte < bytes_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes_;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::optional<svc::SnapshotIoError> code = reject_code(path_, mutated);
      ASSERT_TRUE(code.has_value())
          << "accepted bit flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST_F(SnapshotCorruptionTest, FaultInjectorArchiveDefectsRejectTyped) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    sim::FaultInjector inj(seed);
    for (sim::FaultKind kind : sim::kAllFaultKinds) {
      std::string mutated = inj.apply(kind, bytes_);
      if (mutated == bytes_) continue;  // injector no-op on this input
      std::optional<svc::SnapshotIoError> code = reject_code(path_, mutated);
      ASSERT_TRUE(code.has_value())
          << to_string(kind) << " seed " << seed << " was accepted";
    }
  }
}

TEST_F(SnapshotCorruptionTest, EmptyFileIsTruncated) {
  EXPECT_EQ(reject_code(path_, ""), svc::SnapshotIoError::kTruncated);
}

TEST_F(SnapshotCorruptionTest, WrongMagicIsBadMagic) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadMagic);
  // ASCII-mode mangling: the \r\n tail is part of the magic.
  std::string crlf = bytes_;
  crlf.erase(6, 1);  // \r stripped, everything shifts
  EXPECT_TRUE(reject_code(path_, crlf).has_value());
}

TEST_F(SnapshotCorruptionTest, UnknownFormatVersionIsBadVersion) {
  std::string mutated = bytes_;
  poke<uint32_t>(mutated, offsetof(svc::SnapshotHeader, format_version),
                 svc::kSnapshotFormatVersion + 1);
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadVersion);
}

TEST_F(SnapshotCorruptionTest, FlippedReservedByteIsBadHeaderCrc) {
  std::string mutated = bytes_;
  mutated[21] = 0x7f;  // reserved byte: covered by the CRC, no other gate
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadHeaderCrc);
}

TEST_F(SnapshotCorruptionTest, UnknownDegradedBitsAreBadInvariant) {
  std::string mutated = bytes_;
  poke<uint8_t>(mutated, offsetof(svc::SnapshotHeader, degraded), 0xff);
  reseal_header(mutated);
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadInvariant);
}

TEST_F(SnapshotCorruptionTest, OversizedDeclaredLengthsNeverOverAllocate) {
  // The attack the strict layout accounting exists for: a header declaring
  // terabytes of elements. The loader walks offsets against the real file
  // size before building anything, so the huge count is rejected at the
  // layout stage without any allocation proportional to it (zero payload
  // allocation happens at all — the arrays stay views).
  for (uint64_t huge : {uint64_t{1} << 40, uint64_t{1} << 60}) {
    std::string mutated = bytes_;
    poke<uint64_t>(mutated, seg_desc_at(0, offsetof(svc::SegmentDesc, length)),
                   huge);
    reseal_header(mutated);
    EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadLayout);
  }
  // Declaring a huge total file length instead trips the size audit.
  std::string mutated = bytes_;
  poke<uint64_t>(mutated, offsetof(svc::SnapshotHeader, file_length),
                 uint64_t{1} << 50);
  reseal_header(mutated);
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kTruncated);
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageIsBadLayout) {
  EXPECT_EQ(reject_code(path_, bytes_ + std::string(64, '\xab')),
            svc::SnapshotIoError::kBadLayout);
}

TEST_F(SnapshotCorruptionTest, SegmentGapAndElemSizeMismatchAreBadLayout) {
  std::string shifted = bytes_;
  poke<uint64_t>(shifted, seg_desc_at(2, offsetof(svc::SegmentDesc, offset)),
                 header_.segments[2].offset + 8);
  reseal_header(shifted);
  EXPECT_EQ(reject_code(path_, shifted), svc::SnapshotIoError::kBadLayout);

  std::string resized = bytes_;
  poke<uint32_t>(resized, seg_desc_at(0, offsetof(svc::SegmentDesc, elem_size)),
                 24);
  reseal_header(resized);
  EXPECT_EQ(reject_code(path_, resized), svc::SnapshotIoError::kBadLayout);
}

TEST_F(SnapshotCorruptionTest, CorruptedSegmentCrcFieldIsBadSegmentCrc) {
  std::string mutated = bytes_;
  poke<uint32_t>(mutated, seg_desc_at(0, offsetof(svc::SegmentDesc, crc32c)),
                 header_.segments[0].crc32c ^ 0xdeadbeef);
  reseal_header(mutated);  // header itself is consistent; the segment isn't
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadSegmentCrc);
}

TEST_F(SnapshotCorruptionTest, UnsortedIntervalsAreBadInvariant) {
  // Swap the first two routed intervals; reseal the segment CRC so the
  // structural check is what fires.
  ASSERT_GE(header_.segments[0].count(), 2u);
  std::string mutated = bytes_;
  size_t base = header_.segments[0].offset;
  char tmp[16];
  std::memcpy(tmp, mutated.data() + base, 16);
  std::memmove(mutated.data() + base, mutated.data() + base + 16, 16);
  std::memcpy(mutated.data() + base + 16, tmp, 16);
  reseal_segment(mutated, 0);
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadInvariant);
}

TEST_F(SnapshotCorruptionTest, OverlappingIntervalsAreBadInvariant) {
  std::string mutated = bytes_;
  size_t base = header_.segments[0].offset;
  // Stretch the first interval's end over the second interval's begin.
  uint64_t second_begin = read_le<uint64_t>(mutated, base + 16);
  poke<uint64_t>(mutated, base + 8, second_begin + 1);
  reseal_segment(mutated, 0);
  EXPECT_EQ(reject_code(path_, mutated), svc::SnapshotIoError::kBadInvariant);
}

TEST_F(SnapshotCorruptionTest, OutOfRangeValuesAreBadInvariant) {
  const size_t drop_seg = 4, rov_seg = 5, rir_seg = 6;
  {
    std::string mutated = bytes_;  // incident byte may only be 0/1
    poke<uint8_t>(mutated, header_.segments[drop_seg].offset + 17, 2);
    reseal_segment(mutated, drop_seg);
    EXPECT_EQ(reject_code(path_, mutated),
              svc::SnapshotIoError::kBadInvariant);
  }
  {
    std::string mutated = bytes_;  // category bits beyond the known six
    poke<uint8_t>(mutated, header_.segments[drop_seg].offset + 16, 0xc0);
    reseal_segment(mutated, drop_seg);
    EXPECT_EQ(reject_code(path_, mutated),
              svc::SnapshotIoError::kBadInvariant);
  }
  {
    std::string mutated = bytes_;  // RovStatus beyond kUnrouted
    poke<uint8_t>(mutated, header_.segments[rov_seg].offset + 16, 4);
    reseal_segment(mutated, rov_seg);
    EXPECT_EQ(reject_code(path_, mutated),
              svc::SnapshotIoError::kBadInvariant);
  }
  {
    std::string mutated = bytes_;  // RIR index beyond the five registries
    poke<uint8_t>(mutated, header_.segments[rir_seg].offset + 16, 5);
    reseal_segment(mutated, rir_seg);
    EXPECT_EQ(reject_code(path_, mutated),
              svc::SnapshotIoError::kBadInvariant);
  }
}

TEST_F(SnapshotCorruptionTest, GarbageSegmentBytesAreRejected) {
  std::string mutated = bytes_;
  size_t base = header_.segments[5].offset;  // rov
  std::memset(mutated.data() + base, 0xab, header_.segments[5].length);
  reseal_segment(mutated, 5);
  std::optional<svc::SnapshotIoError> code = reject_code(path_, mutated);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, svc::SnapshotIoError::kBadInvariant);
}

TEST_F(SnapshotCorruptionTest, MissingFileIsIo) {
  try {
    svc::load_snapshot(tmp_.path("does_not_exist.dls"), 1);
    FAIL() << "loaded a path that does not exist";
  } catch (const svc::SnapshotFormatError& e) {
    EXPECT_EQ(e.code(), svc::SnapshotIoError::kIo);
  }
}

// ---------------------------------------------------------------------------
// World-scale round trip: the generated study, ≥30 dates, degraded days,
// every thread count.

class PersistWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* PersistWorldTest::config_ = nullptr;
sim::World* PersistWorldTest::world_ = nullptr;

TEST_F(PersistWorldTest, RoundTripIsAnswerIdenticalAcross30Dates) {
  TempDir tmp;
  core::Study s = study();
  util::ThreadPool pool(util::ThreadPool::default_thread_count());
  core::SnapshotCache cache(world_->registry, world_->fleet, world_->roas,
                            world_->drop, &world_->irr);
  s.pool = &pool;
  s.snapshots = &cache;
  core::DropIndex index = core::DropIndex::build(s);

  const std::vector<net::Prefix> sweep = slash8_sweep();
  sim::Rng rng(20190804);
  for (int i = 0; i < 30; ++i) {
    net::Date d = config_->window_begin + 10 + i * 4;
    auto snap = svc::compile_snapshot(s, index, d, uint64_t(i) + 1);

    // Writer determinism: repeat serializations are byte-identical, and a
    // saved file holds exactly those bytes.
    const std::string bytes = svc::serialize_snapshot(*snap);
    ASSERT_EQ(bytes, svc::serialize_snapshot(*snap)) << d.to_string();
    const std::string path = tmp.path(svc::SnapshotStore::file_name(d));
    svc::save_snapshot(*snap, path);
    ASSERT_EQ(read_file(path), bytes) << d.to_string();
    svc::save_snapshot(*snap, path);  // repeat saves byte-stable too
    ASSERT_EQ(read_file(path), bytes) << d.to_string();

    auto loaded = svc::load_snapshot(path, uint64_t(i) + 1);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->date(), d);
    EXPECT_EQ(loaded->degraded(), snap->degraded());
    EXPECT_TRUE(loaded->routed().is_view());

    expect_identical_answers(*snap, *loaded, sweep);
    expect_identical_answers(*snap, *loaded, fuzz_prefixes(rng, 10000));
  }
}

TEST_F(PersistWorldTest, SavedBytesAreIdenticalForEveryThreadCount) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  std::vector<std::string> reference;
  for (unsigned threads : {1u, 2u, 4u}) {
    util::ThreadPool pool(threads);
    core::SnapshotCache cache(world_->registry, world_->fleet, world_->roas,
                              world_->drop, &world_->irr);
    core::Study st = s;
    st.pool = &pool;
    st.snapshots = &cache;
    std::vector<std::string> serialized;
    for (int i = 0; i < 6; ++i) {
      net::Date d = config_->window_begin + 10 + i * 20;
      auto snap = svc::compile_snapshot(st, index, d, 1);
      serialized.push_back(svc::serialize_snapshot(*snap));
    }
    if (reference.empty()) {
      reference = std::move(serialized);
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(serialized[i], reference[i])
            << "threads=" << threads << " date index " << i;
      }
    }
  }
}

TEST_F(PersistWorldTest, DegradedDaysRoundTripWithTheirBits) {
  TempDir tmp;
  core::Study s = study();
  core::DataQuality quality;
  s.quality = &quality;
  core::DropIndex index = core::DropIndex::build(s);

  net::Date drop_day = config_->window_begin + 40;
  net::Date multi_day = config_->window_begin + 44;
  quality.mark_day_unavailable(core::Feed::kDropFeed, drop_day);
  quality.mark_day_unavailable(core::Feed::kRoas, multi_day);
  quality.mark_day_unavailable(core::Feed::kIrr, multi_day);

  sim::Rng rng(0xD0D0);
  for (net::Date d : {drop_day, multi_day}) {
    auto snap = svc::compile_snapshot(s, index, d, 1);
    ASSERT_NE(snap->degraded(), 0) << d.to_string();
    const std::string path = tmp.path(svc::SnapshotStore::file_name(d));
    svc::save_snapshot(*snap, path);
    auto loaded = svc::load_snapshot(path, 1);
    EXPECT_EQ(loaded->degraded(), snap->degraded()) << d.to_string();
    expect_identical_answers(*snap, *loaded, slash8_sweep());
    expect_identical_answers(*snap, *loaded, fuzz_prefixes(rng, 2000));
  }
  uint8_t drop_bit =
      uint8_t{1} << static_cast<uint8_t>(core::Feed::kDropFeed);
  auto snap = svc::compile_snapshot(s, index, drop_day, 1);
  EXPECT_EQ(snap->degraded() & drop_bit, drop_bit);
}

// ---------------------------------------------------------------------------
// SnapshotStore: the version-uniqueness contract, LRU eviction, rescan, and
// disk-only / corrupt-file behavior.

class SnapshotStoreTest : public PersistWorldTest {
 protected:
  std::optional<core::Study> store_study_;
  std::unique_ptr<core::DropIndex> index_;

  void SetUp() override {
    store_study_.emplace(study());
    index_ = std::make_unique<core::DropIndex>(
        core::DropIndex::build(*store_study_));
  }

  net::Date date(int offset) const { return config_->window_begin + offset; }
};

TEST_F(SnapshotStoreTest, VersionsAreUniqueAcrossEvictionAndRescan) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  cfg.max_resident = 2;
  svc::SnapshotStore store(cfg, &*store_study_, index_.get());

  // Keep every snapshot alive so distinct objects stay distinguishable.
  std::vector<std::shared_ptr<const svc::Snapshot>> held;
  for (int i = 0; i < 5; ++i) held.push_back(store.get(date(20 + i)));
  // All five evicted-or-resident snapshots came from compiles and were
  // written through.
  svc::SnapshotStore::Stats stats = store.stats();
  EXPECT_EQ(stats.compiles, 5u);
  EXPECT_EQ(stats.saves, 5u);
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(store.resident_count(), 2u);

  // Re-request an evicted day: this mmap-loads the write-through file and
  // MUST mint a fresh version — the held snapshot for the same date is a
  // different object and may still be serving queries.
  held.push_back(store.get(date(20)));
  EXPECT_EQ(store.stats().loads, 1u);
  // Mid-run reload: drop residency, re-request more days.
  store.rescan();
  held.push_back(store.get(date(21)));
  held.push_back(store.get(date(22)));

  std::set<const svc::Snapshot*> objects;
  std::set<uint64_t> versions;
  for (const auto& snap : held) {
    ASSERT_NE(snap, nullptr);
    objects.insert(snap.get());
    versions.insert(snap->version());
  }
  EXPECT_EQ(objects.size(), held.size()) << "each get() minted a new object";
  EXPECT_EQ(versions.size(), held.size())
      << "two distinct snapshots were served under one version";

  // Evicted-but-held snapshots must stay fully usable: their mmap lifetime
  // rides the shared_ptr, not the store's residency.
  expect_identical_answers(*held[0], *held[5], slash8_sweep());
}

TEST_F(SnapshotStoreTest, ResidentHitReturnsTheSameObjectAndVersion) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  svc::SnapshotStore store(cfg, &*store_study_, index_.get());
  auto a = store.get(date(30));
  auto b = store.get(date(30));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->version(), b->version());
  EXPECT_EQ(store.stats().resident_hits, 1u);
  EXPECT_EQ(store.stats().compiles, 1u);
}

TEST_F(SnapshotStoreTest, MemoryOnlyStoreCompilesWithoutTouchingDisk) {
  svc::SnapshotStore store({}, &*store_study_, index_.get());
  auto snap = store.get(date(30));
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(store.stats().saves, 0u);
  EXPECT_TRUE(store.on_disk().empty());
}

TEST_F(SnapshotStoreTest, CorruptFileFallsBackToCompileAndHealsTheFile) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  svc::SnapshotStore writer_store(cfg, &*store_study_, index_.get());
  net::Date d = date(33);
  write_file(writer_store.path_for(d), "these are not snapshot bytes");

  auto snap = writer_store.get(d);
  ASSERT_NE(snap, nullptr);
  svc::SnapshotStore::Stats stats = writer_store.stats();
  EXPECT_EQ(stats.load_failures, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.saves, 1u);  // the bad file was overwritten

  // The healed file now loads cleanly in a disk-only store.
  svc::SnapshotStore disk_only(cfg);
  auto reloaded = disk_only.get(d);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(disk_only.stats().loads, 1u);
  expect_identical_answers(*snap, *reloaded, slash8_sweep());
}

TEST_F(SnapshotStoreTest, DiskOnlyStoreServesFilesAndRefusesTheRest) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  {
    svc::SnapshotStore writer_store(cfg, &*store_study_, index_.get());
    writer_store.get(date(35));
  }
  svc::SnapshotStore disk_only(cfg);
  EXPECT_NE(disk_only.get(date(35)), nullptr);
  EXPECT_EQ(disk_only.get(date(36)), nullptr) << "no file, no compiler";

  write_file(disk_only.path_for(date(37)), "garbage");
  EXPECT_THROW(disk_only.get(date(37)), svc::SnapshotFormatError)
      << "without a compiler, corruption must surface to the caller";
}

// ---------------------------------------------------------------------------
// Delta files (format version 2): round-trip fidelity, hostile bytes, and
// base-chain resolution through the store.

// Tomorrow's world relative to make_golden_snapshot(): mostly the same
// structures with day-over-day edits that exercise every patch shape — pure
// copy (rir unchanged), literal inserts (new route, as0 appears), value
// edits (rov flip, incident cleared), and deletions (a drop delisting).
svc::Snapshot make_golden_next() {
  net::IntervalSet routed;
  routed.insert(P("1.0.0.0/8"));
  routed.insert(P("9.9.0.0/16"));
  routed.insert(P("11.0.0.0/8"));  // new route
  routed.insert(P("203.0.113.0/24"));
  net::IntervalSet as0;
  as0.insert(P("100.64.0.0/10"));  // was empty yesterday
  net::IntervalSet irr;
  irr.insert(P("9.9.8.0/22"));
  net::IntervalSet allocated;
  allocated.insert(P("1.0.0.0/8"));
  allocated.insert(P("9.0.0.0/8"));
  allocated.insert(P("203.0.0.0/8"));

  net::SegmentMap<svc::Snapshot::DropInfo> drop;
  drop.assign(P("1.2.3.0/24"), svc::Snapshot::DropInfo{0x21, 0});  // resolved
  drop.finalize();  // 9.9.9.0/24 delisted overnight
  net::SegmentMap<uint8_t> rov;
  rov.assign(P("1.0.0.0/8"), 2);
  rov.assign(P("1.2.0.0/16"), 0);  // invalid -> valid (ROA fixed)
  rov.assign(P("203.0.113.0/24"), 0);
  rov.finalize();
  net::SegmentMap<uint8_t> rir;  // unchanged: encodes as one copy op
  rir.assign(P("1.0.0.0/8"), 0);
  rir.assign(P("9.0.0.0/8"), 3);
  rir.assign(P("203.0.0.0/8"), 4);
  rir.finalize();

  return svc::Snapshot(8, net::Date::parse("2019-08-05"), 0x00,
                       std::move(routed), std::move(as0), std::move(irr),
                       std::move(allocated), std::move(drop), std::move(rov),
                       std::move(rir));
}

// reseal_header/reseal_segment for the 216-byte delta header layout.
void reseal_delta_header(std::string& bytes) {
  svc::SnapshotDeltaHeader h{};
  ASSERT_GE(bytes.size(), sizeof h);
  std::memcpy(&h, bytes.data(), sizeof h);
  h.header_crc32c = 0;
  poke<uint32_t>(bytes, offsetof(svc::SnapshotDeltaHeader, header_crc32c),
                 util::crc32c(&h, sizeof h));
}

void reseal_delta_segment(std::string& bytes, size_t seg) {
  svc::SnapshotDeltaHeader h{};
  ASSERT_GE(bytes.size(), sizeof h);
  std::memcpy(&h, bytes.data(), sizeof h);
  const svc::SegmentDesc& sd = h.segments[seg];
  ASSERT_LE(sd.offset + sd.length, bytes.size());
  poke<uint32_t>(bytes,
                 offsetof(svc::SnapshotDeltaHeader, segments) +
                     seg * sizeof(svc::SegmentDesc) +
                     offsetof(svc::SegmentDesc, crc32c),
                 util::crc32c(bytes.data() + sd.offset, sd.length));
  reseal_delta_header(bytes);
}

std::optional<svc::SnapshotIoError> reject_delta_code(
    const std::string& path, const std::string& bytes,
    const svc::Snapshot& base) {
  write_file(path, bytes);
  try {
    auto snap = svc::load_snapshot_delta(path, base, 1);
    ADD_FAILURE() << "delta loader accepted corrupted bytes ("
                  << bytes.size() << " bytes)";
    (void)snap;
    return std::nullopt;
  } catch (const svc::SnapshotFormatError& e) {
    return e.code();
  }
}

class SnapshotDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::make_shared<svc::Snapshot>(make_golden_snapshot());
    next_ = std::make_shared<svc::Snapshot>(make_golden_next());
    bytes_ = svc::serialize_snapshot_delta(*next_, *base_);
    path_ = tmp_.path("delta.dls");
    write_file(path_, bytes_);
  }

  TempDir tmp_;
  std::shared_ptr<svc::Snapshot> base_;
  std::shared_ptr<svc::Snapshot> next_;
  std::string bytes_;
  std::string path_;
};

TEST_F(SnapshotDeltaTest, RoundTripAnswersIdenticallyAndIsDeterministic) {
  EXPECT_EQ(bytes_, svc::serialize_snapshot_delta(*next_, *base_));

  auto loaded = svc::load_snapshot_delta(path_, *base_, 99);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->version(), 99u);
  EXPECT_EQ(loaded->date(), next_->date());
  EXPECT_EQ(loaded->degraded(), next_->degraded());
  sim::Rng rng(0xDE17A);
  expect_identical_answers(*next_, *loaded, golden_probes());
  expect_identical_answers(*next_, *loaded, fuzz_prefixes(rng, 5000));

  // save_snapshot_delta writes exactly the serialized bytes.
  const std::string saved = tmp_.path("delta_saved.dls");
  svc::save_snapshot_delta(*next_, *base_, saved);
  EXPECT_EQ(read_file(saved), bytes_);
}

TEST_F(SnapshotDeltaTest, DeltaIsSmallerThanTheKeyframe) {
  EXPECT_LT(bytes_.size(), svc::serialize_snapshot(*next_).size());
}

TEST_F(SnapshotDeltaTest, HeaderDeclaresKindVersionAndBase) {
  EXPECT_EQ(svc::snapshot_file_kind(path_), svc::SnapshotFileKind::kDelta);
  svc::SnapshotDeltaHeader h = svc::read_snapshot_delta_header(path_);
  EXPECT_EQ(h.format_version, svc::kSnapshotDeltaFormatVersion);
  EXPECT_EQ(net::Date(h.date_days), next_->date());
  EXPECT_EQ(net::Date(h.base_date_days), base_->date());
  EXPECT_EQ(h.writer_version, 8u);
  // Every patch stream is a byte stream: elem_size 1, strict layout.
  uint64_t cursor = sizeof(svc::SnapshotDeltaHeader);
  for (size_t s = 0; s < svc::kSnapshotSegmentCount; ++s) {
    EXPECT_EQ(h.segments[s].elem_size, 1u) << s;
    EXPECT_EQ(h.segments[s].offset, cursor) << s;
    cursor += h.segments[s].length;
  }
  EXPECT_EQ(cursor, bytes_.size());
}

TEST_F(SnapshotDeltaTest, FormatsAreMutuallyExclusiveByVersion) {
  // The keyframe loader rejects a delta cleanly, and vice versa — two
  // format versions coexisting in one directory can never cross-load.
  EXPECT_EQ(reject_code(path_, bytes_), svc::SnapshotIoError::kBadVersion);
  const std::string keyframe = tmp_.path("keyframe.dls");
  write_file(keyframe, svc::serialize_snapshot(*base_));
  EXPECT_EQ(svc::snapshot_file_kind(keyframe),
            svc::SnapshotFileKind::kKeyframe);
  EXPECT_EQ(reject_delta_code(keyframe, svc::serialize_snapshot(*base_),
                              *base_),
            svc::SnapshotIoError::kBadVersion);
}

TEST_F(SnapshotDeltaTest, EveryTruncationLengthRejectsTyped) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::optional<svc::SnapshotIoError> code =
        reject_delta_code(path_, bytes_.substr(0, len), *base_);
    ASSERT_TRUE(code.has_value()) << "accepted truncation to " << len;
  }
}

TEST_F(SnapshotDeltaTest, EverySingleBitFlipRejectsTyped) {
  // Header CRC covers the header; each patch stream has a segment CRC; the
  // reconstruction CRC pins the output. No flip may survive all three.
  for (size_t byte = 0; byte < bytes_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes_;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::optional<svc::SnapshotIoError> code =
          reject_delta_code(path_, mutated, *base_);
      ASSERT_TRUE(code.has_value())
          << "accepted bit flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST_F(SnapshotDeltaTest, TruncatedPatchStreamIsBadLayout) {
  // Claim one more op than the stream holds, with every CRC resealed, so
  // the PatchReader's bounds check is the gate that must fire.
  svc::SnapshotDeltaHeader h{};
  std::memcpy(&h, bytes_.data(), sizeof h);
  std::string mutated = bytes_;
  // Patch stream layout: new_count u64, new_crc32c u32, op_count u32.
  poke<uint32_t>(mutated, h.segments[0].offset + 12,
                 read_le<uint32_t>(bytes_, h.segments[0].offset + 12) + 1);
  reseal_delta_segment(mutated, 0);
  EXPECT_EQ(reject_delta_code(path_, mutated, *base_),
            svc::SnapshotIoError::kBadLayout);
}

TEST_F(SnapshotDeltaTest, WrongBaseDateIsBadInvariant) {
  // A base whose date differs from the declared one is refused outright.
  EXPECT_EQ(reject_delta_code(path_, bytes_, *next_),
            svc::SnapshotIoError::kBadInvariant);
}

TEST_F(SnapshotDeltaTest, WrongBaseContentFailsTheReconstructionCrc) {
  // Right date, wrong bytes: a copy op pulls different content, and the
  // end-to-end reconstruction CRC is what catches it.
  svc::Snapshot tampered = make_golden_snapshot();
  net::SegmentMap<uint8_t> rir;  // one value differs from the real base
  rir.assign(P("1.0.0.0/8"), 0);
  rir.assign(P("9.0.0.0/8"), 2);  // was 3
  rir.assign(P("203.0.0.0/8"), 4);
  rir.finalize();
  svc::Snapshot base2(
      7, base_->date(), base_->degraded(), net::IntervalSet(base_->routed()),
      net::IntervalSet(base_->as0()), net::IntervalSet(base_->irr()),
      net::IntervalSet(base_->allocated()),
      net::SegmentMap<svc::Snapshot::DropInfo>(tampered.drop()),
      net::SegmentMap<uint8_t>(tampered.rov()), std::move(rir));
  EXPECT_EQ(reject_delta_code(path_, bytes_, base2),
            svc::SnapshotIoError::kBadSegmentCrc);
}

TEST_F(SnapshotDeltaTest, NonEarlierBaseIsRefusedAtWriteTime) {
  EXPECT_THROW(svc::serialize_snapshot_delta(*base_, *next_), InvariantError);
  EXPECT_THROW(svc::serialize_snapshot_delta(*base_, *base_), InvariantError);
}

TEST_F(SnapshotDeltaTest, BaseNotEarlierInFileIsBadInvariant) {
  // Patch the declared base date to equal the file's own date (a would-be
  // self-reference/cycle) — the loader must refuse before touching patches.
  std::string mutated = bytes_;
  poke<int32_t>(mutated, offsetof(svc::SnapshotDeltaHeader, base_date_days),
                next_->date().days());
  reseal_delta_header(mutated);
  EXPECT_EQ(reject_delta_code(path_, mutated, *next_),
            svc::SnapshotIoError::kBadInvariant);
}

// Store-level chain resolution: keyframe + delta + delta on disk.
TEST_F(SnapshotStoreTest, StoreResolvesDeltaChains) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  svc::SnapshotStore writer(cfg, &*store_study_, index_.get());
  auto s0 = writer.get(date(20));
  auto s1 = writer.get(date(21));
  auto s2 = writer.get(date(22));
  svc::save_snapshot_delta(*s1, *s0, writer.path_for(date(21)));
  svc::save_snapshot_delta(*s2, *s1, writer.path_for(date(22)));

  svc::SnapshotStore disk_only(cfg);
  auto chained = disk_only.get(date(22));
  ASSERT_NE(chained, nullptr);
  svc::SnapshotStore::Stats stats = disk_only.stats();
  EXPECT_EQ(stats.loads, 1u);        // the keyframe anchor
  EXPECT_EQ(stats.delta_loads, 2u);  // both hops
  EXPECT_EQ(disk_only.resident_count(), 3u) << "bases land in the LRU";
  expect_identical_answers(*s2, *chained, slash8_sweep());
  // The intermediate hop is resident: serving it is a hit, not a load.
  auto mid = disk_only.get(date(21));
  EXPECT_EQ(disk_only.stats().resident_hits, 1u);
  expect_identical_answers(*s1, *mid, slash8_sweep());
}

TEST_F(SnapshotStoreTest, BrokenKeyframeUnderADeltaHealsOrSurfaces) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  std::shared_ptr<const svc::Snapshot> s0, s1;
  {
    svc::SnapshotStore writer(cfg, &*store_study_, index_.get());
    s0 = writer.get(date(20));
    s1 = writer.get(date(21));
    svc::save_snapshot_delta(*s1, *s0, writer.path_for(date(21)));
  }
  // Smash the keyframe the delta chain hangs from.
  svc::SnapshotStore probe(cfg);
  write_file(probe.path_for(date(20)), "not a snapshot");

  // Without a compiler the broken chain must surface, on every call.
  EXPECT_THROW(probe.get(date(21)), svc::SnapshotFormatError);
  EXPECT_THROW(probe.get(date(21)), svc::SnapshotFormatError)
      << "failures must not be cached";

  // With a compiler the base heals (recompiled + re-saved as a keyframe)
  // and the delta then applies over it — compile determinism makes the
  // reconstruction CRC pass.
  svc::SnapshotStore healer(cfg, &*store_study_, index_.get());
  auto healed = healer.get(date(21));
  ASSERT_NE(healed, nullptr);
  svc::SnapshotStore::Stats stats = healer.stats();
  EXPECT_EQ(stats.load_failures, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.delta_loads, 1u);
  expect_identical_answers(*s1, *healed, slash8_sweep());
}

TEST_F(SnapshotStoreTest, TruncatedDeltaHealsToKeyframeWithACompiler) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  std::shared_ptr<const svc::Snapshot> s0, s1;
  {
    svc::SnapshotStore writer(cfg, &*store_study_, index_.get());
    s0 = writer.get(date(20));
    s1 = writer.get(date(21));
    svc::save_snapshot_delta(*s1, *s0, writer.path_for(date(21)));
  }
  svc::SnapshotStore probe(cfg);
  const std::string delta_path = probe.path_for(date(21));
  std::string truncated = read_file(delta_path);
  truncated.resize(truncated.size() - 7);
  write_file(delta_path, truncated);

  EXPECT_THROW(probe.get(date(21)), svc::SnapshotFormatError);

  svc::SnapshotStore healer(cfg, &*store_study_, index_.get());
  auto healed = healer.get(date(21));
  ASSERT_NE(healed, nullptr);
  expect_identical_answers(*s1, *healed, slash8_sweep());
  // The heal re-saved the day as a keyframe; a fresh disk-only store now
  // serves it without a chain.
  svc::SnapshotStore after(cfg);
  EXPECT_EQ(svc::snapshot_file_kind(delta_path),
            svc::SnapshotFileKind::kKeyframe);
  EXPECT_NE(after.get(date(21)), nullptr);
  EXPECT_EQ(after.stats().delta_loads, 0u);
}

TEST_F(SnapshotStoreTest, MissingDeltaBaseSurfacesWithoutACompiler) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  {
    svc::SnapshotStore writer(cfg, &*store_study_, index_.get());
    auto s0 = writer.get(date(20));
    auto s1 = writer.get(date(21));
    svc::save_snapshot_delta(*s1, *s0, writer.path_for(date(21)));
  }
  svc::SnapshotStore probe(cfg);
  fs::remove(probe.path_for(date(20)));
  EXPECT_THROW(probe.get(date(21)), svc::SnapshotFormatError);
}

TEST_F(SnapshotStoreTest, OnDiskListsParsedDatesAndIgnoresJunk) {
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  svc::SnapshotStore store(cfg, &*store_study_, index_.get());
  store.get(date(22));
  store.get(date(20));
  write_file(tmp.path("notes.txt"), "junk");
  write_file(tmp.path("20190230.dls"), "junk");  // impossible date
  write_file(tmp.path("2019080.dls"), "junk");   // wrong name length

  std::vector<net::Date> dates = store.on_disk();
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_EQ(dates[0], date(20));
  EXPECT_EQ(dates[1], date(22));
  EXPECT_EQ(svc::SnapshotStore::file_name(net::Date::parse("2019-08-04")),
            "20190804.dls");
}

}  // namespace
}  // namespace droplens
