#include <gtest/gtest.h>

#include "net/cidr_cover.hpp"
#include "rpki/as0_policy.hpp"

namespace droplens::rpki {
namespace {

net::Date D(const char* s) { return net::Date::parse(s); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(As0PolicyDates, MatchThePaper) {
  EXPECT_EQ(*as0_policy_date(rir::Rir::kApnic), D("2020-09-02"));
  EXPECT_EQ(*as0_policy_date(rir::Rir::kLacnic), D("2021-06-23"));
  EXPECT_FALSE(as0_policy_date(rir::Rir::kArin).has_value());
  EXPECT_FALSE(as0_policy_date(rir::Rir::kRipe).has_value());
  EXPECT_FALSE(as0_policy_date(rir::Rir::kAfrinic).has_value());
}

class As0EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry.administer(rir::Rir::kApnic, P("1.0.0.0/8"));
    registry.administer(rir::Rir::kArin, P("8.0.0.0/8"));
  }
  rir::Registry registry;
  RoaArchive archive;
};

TEST_F(As0EngineTest, NoopBeforePolicyDate) {
  As0PolicyEngine engine(registry, archive);
  EXPECT_EQ(engine.sync(rir::Rir::kApnic, D("2020-09-01")), 0u);
  EXPECT_EQ(archive.total_published(), 0u);
}

TEST_F(As0EngineTest, NoopForRirsWithoutPolicy) {
  As0PolicyEngine engine(registry, archive);
  EXPECT_EQ(engine.sync(rir::Rir::kArin, D("2022-01-01")), 0u);
}

TEST_F(As0EngineTest, CoversFreePoolUnderAs0Tal) {
  As0PolicyEngine engine(registry, archive);
  net::Date d = D("2020-09-02");
  EXPECT_GT(engine.sync(rir::Rir::kApnic, d), 0u);
  // The whole (unallocated) /8 is covered, but only under the AS0 TAL.
  TalSet as0_only;
  as0_only.add(Tal::kApnicAs0);
  EXPECT_EQ(archive.signed_space(d, as0_only).slash8_equivalents(), 1.0);
  EXPECT_FALSE(archive.signed_on(P("1.2.0.0/16"), d));  // default TALs
  EXPECT_EQ(archive.validate_route(P("1.2.0.0/16"), net::Asn(5), d,
                                   TalSet::all()),
            Validity::kInvalid);
}

TEST_F(As0EngineTest, SyncIsIdempotent) {
  As0PolicyEngine engine(registry, archive);
  net::Date d = D("2020-10-01");
  engine.sync(rir::Rir::kApnic, d);
  EXPECT_EQ(engine.sync(rir::Rir::kApnic, d), 0u);
}

TEST_F(As0EngineTest, AllocationShrinksAs0Coverage) {
  As0PolicyEngine engine(registry, archive);
  net::Date d1 = D("2020-10-01");
  engine.sync(rir::Rir::kApnic, d1);
  // The RIR allocates a /16; the next sync must revoke and re-publish so
  // the allocated space is no longer AS0-covered.
  net::Date d2 = D("2021-02-01");
  registry.allocate(P("1.2.0.0/16"), rir::Rir::kApnic, "org", d2);
  EXPECT_GT(engine.sync(rir::Rir::kApnic, d2), 0u);
  TalSet as0_only;
  as0_only.add(Tal::kApnicAs0);
  net::IntervalSet covered = archive.signed_space(d2, as0_only);
  EXPECT_FALSE(covered.intersects(P("1.2.0.0/16")));
  EXPECT_DOUBLE_EQ(covered.slash8_equivalents(),
                   1.0 - net::Prefix::parse("1.2.0.0/16")
                             .slash8_equivalents());
}

TEST_F(As0EngineTest, SyncAllCoversActivePoliciesOnly) {
  registry.administer(rir::Rir::kLacnic, P("177.0.0.0/8"));
  As0PolicyEngine engine(registry, archive);
  // Between the APNIC and LACNIC policy dates only APNIC syncs.
  EXPECT_GT(engine.sync_all(D("2021-01-01")), 0u);
  TalSet lacnic_as0;
  lacnic_as0.add(Tal::kLacnicAs0);
  EXPECT_TRUE(archive.signed_space(D("2021-01-01"), lacnic_as0).empty());
  // After June 23, 2021, LACNIC joins.
  engine.sync_all(D("2021-07-01"));
  EXPECT_FALSE(archive.signed_space(D("2021-07-01"), lacnic_as0).empty());
}

}  // namespace
}  // namespace droplens::rpki
