#include <gtest/gtest.h>

#include "drop/sbl.hpp"

namespace droplens::drop {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  Classification classify(const char* text) {
    return classifier_.classify(text);
  }
  Classifier classifier_;
};

// The six excerpts of the paper's Table 2 and their published labels.
TEST_F(ClassifierTest, PaperTable2Excerpts) {
  {
    Classification c = classify("AS204139 spammer hosting");
    EXPECT_TRUE(c.categories.exclusive(Category::kMaliciousHosting));
    ASSERT_TRUE(c.malicious_asn.has_value());
    EXPECT_EQ(c.malicious_asn->value(), 204139u);
  }
  {
    Classification c =
        classify("hijacked IP range ... billing@ahostinginc.com");
    EXPECT_TRUE(c.categories.exclusive(Category::kHijacked));
  }
  {
    Classification c = classify(
        "Snowshoe IP block on Stolen AS62927 ... "
        "james.johnson@networxhosting.com");
    EXPECT_TRUE(c.categories.has(Category::kSnowshoe));
    EXPECT_TRUE(c.categories.has(Category::kHijacked));
    EXPECT_FALSE(c.categories.has(Category::kMaliciousHosting));
    EXPECT_EQ(c.malicious_asn->value(), 62927u);
  }
  {
    Classification c =
        classify("Register Of Known Spam Operations ... snowshoe range");
    EXPECT_TRUE(c.categories.has(Category::kKnownSpamOp));
    EXPECT_TRUE(c.categories.has(Category::kSnowshoe));
  }
  {
    Classification c = classify(
        "Register Of Known Spam Operations ... illegal netblock hijacking "
        "operation");
    EXPECT_TRUE(c.categories.has(Category::kKnownSpamOp));
    EXPECT_TRUE(c.categories.has(Category::kHijacked));
  }
  {
    Classification c = classify(
        "Department of Defense ... Spamhaus believes that this IP address "
        "range is being used or is about to be used for the purpose of high "
        "volume spam emission.");
    EXPECT_TRUE(c.categories.exclusive(Category::kSnowshoe));
    EXPECT_TRUE(c.inferred);
  }
}

TEST_F(ClassifierTest, HostingInsideEmailDoesNotCount) {
  EXPECT_FALSE(classify("hijacked range, contact billing@spamhosting.com")
                   .categories.has(Category::kMaliciousHosting));
  EXPECT_FALSE(classify("see www.bulletproofhosting.example for spam")
                   .categories.has(Category::kMaliciousHosting));
}

TEST_F(ClassifierTest, HostingWithPunctuationStillCounts) {
  EXPECT_TRUE(classify("AS1 spammer hosting; ignores abuse reports")
                  .categories.has(Category::kMaliciousHosting));
  EXPECT_TRUE(classify("known for spam hosting.")
                  .categories.has(Category::kMaliciousHosting));
  EXPECT_TRUE(classify("(bulletproof hosting)")
                  .categories.has(Category::kMaliciousHosting));
}

TEST_F(ClassifierTest, HostingNeedsMaliciousContext) {
  // Plain business language about hosting is not malicious hosting.
  EXPECT_TRUE(classify("hosting provider received our notice")
                  .categories.empty());
  // With a malicious context word, it is.
  EXPECT_TRUE(classify("bulletproof hosting for criminals")
                  .categories.has(Category::kMaliciousHosting));
  EXPECT_TRUE(classify("spam hosting operation")
                  .categories.has(Category::kMaliciousHosting));
}

TEST_F(ClassifierTest, KeywordsAreWordBounded) {
  EXPECT_TRUE(classify("prehijacked").categories.empty());
  EXPECT_TRUE(classify("hijack in progress")
                  .categories.has(Category::kHijacked));
  EXPECT_TRUE(classify("hijacking operation")
                  .categories.has(Category::kHijacked));
  EXPECT_TRUE(classify("range was stolen")
                  .categories.has(Category::kHijacked));
}

TEST_F(ClassifierTest, UnallocatedAndBogon) {
  EXPECT_TRUE(classify("unallocated netblock in use")
                  .categories.has(Category::kUnallocated));
  EXPECT_TRUE(classify("bogon announcement detected")
                  .categories.has(Category::kUnallocated));
}

TEST_F(ClassifierTest, AsnExtraction) {
  EXPECT_EQ(classify("spam from AS123 daily").malicious_asn->value(), 123u);
  EXPECT_EQ(classify("lowercase as456 works").malicious_asn->value(), 456u);
  EXPECT_FALSE(classify("no asn here").malicious_asn.has_value());
  EXPECT_FALSE(classify("alias99 is not an ASN").malicious_asn.has_value());
  EXPECT_FALSE(classify("AS0 route").malicious_asn.has_value());  // AS0 ≠ actor
  // First ASN wins.
  EXPECT_EQ(classify("AS111 then AS222").malicious_asn->value(), 111u);
}

TEST_F(ClassifierTest, VagueRecordsStayUnclassified) {
  Classification c = classify("Suspicious activity; investigation ongoing.");
  EXPECT_TRUE(c.categories.empty());
  EXPECT_FALSE(c.inferred);
  EXPECT_TRUE(c.matched_keywords.empty());
}

TEST_F(ClassifierTest, MatchedKeywordsAreReported) {
  Classification c = classify("snowshoe range on stolen AS1");
  EXPECT_EQ(c.matched_keywords.size(), 2u);
}

}  // namespace
}  // namespace droplens::drop
