// Zero-downtime reload: client threads hammer the server while the main
// thread swaps snapshots. Every response must be self-consistent with
// exactly one snapshot version — the version field and every answer in a
// frame agree on which snapshot served it. This file is the TSan gate for
// the service (label `service`):
//   cmake -B build-tsan -S . -DDROPLENS_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L service
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/drop_index.hpp"
#include "sim/generator.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "svc/transport.hpp"

namespace droplens {
namespace {

class ServiceReloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* ServiceReloadTest::config_ = nullptr;
sim::World* ServiceReloadTest::world_ = nullptr;

TEST_F(ServiceReloadTest, ResponsesAreSelfConsistentWhileSnapshotsSwap) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  // Two snapshots for different dates: their answers differ (the second
  // date even answers kWrongDate for the first date's queries), so a
  // response mixing the two would be caught byte-for-byte.
  net::Date d1 = config_->window_begin + 30;
  net::Date d2 = config_->window_begin + 90;
  auto snap1 = svc::compile_snapshot(s, index, d1, 1);
  auto snap2 = svc::compile_snapshot(s, index, d2, 2);

  std::vector<svc::Query> batch;
  for (const core::DropEntry& e : index.entries()) {
    batch.push_back(svc::Query{d1, e.prefix, svc::kAllFields});
    if (batch.size() >= 64) break;
  }
  ASSERT_FALSE(batch.empty());
  const std::string request = svc::encode_query_request(batch);

  svc::Server server(snap1);
  // The two legal responses, recorded before the storm.
  const std::string expect1 = server.serve(request);
  server.publish(snap2);
  const std::string expect2 = server.serve(request);
  ASSERT_NE(expect1, expect2);
  server.publish(snap1);

  constexpr int kClientThreads = 8;
  constexpr int kRequestsPerThread = 400;
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> seen1{0}, seen2{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread && !failed.load(); ++i) {
        std::string response = server.serve(request);
        if (response == expect1) {
          seen1.fetch_add(1);
        } else if (response == expect2) {
          seen2.fetch_add(1);
        } else {
          failed.store(true);
        }
      }
    });
  }
  // Reload continuously while the clients run.
  for (int swap = 0; swap < 600; ++swap) {
    server.publish(swap % 2 ? snap1 : snap2);
  }
  for (std::thread& c : clients) c.join();

  EXPECT_FALSE(failed.load()) << "a response mixed two snapshot versions";
  EXPECT_EQ(seen1.load() + seen2.load(),
            uint64_t{kClientThreads} * kRequestsPerThread);
  EXPECT_GT(server.stats().reloads, 0u);
}

TEST_F(ServiceReloadTest, ReloadOverTcpKeepsClientsConnected) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 30;
  auto snap1 = svc::compile_snapshot(s, index, d, 1);
  auto snap2 = svc::compile_snapshot(s, index, d, 2);  // same date, new version

  svc::Server server(snap1);
  svc::TcpServer tcp(server);
  svc::TcpClientConnection conn("127.0.0.1", tcp.port(), svc::frame_size);
  svc::Client client(conn);

  net::Prefix probe = index.entries().front().prefix;
  EXPECT_EQ(client.query({svc::Query{d, probe, svc::kAllFields}})
                .snapshot_version,
            1u);
  server.publish(snap2);
  // Same connection, no reconnect: the next frame sees the new snapshot.
  EXPECT_EQ(client.query({svc::Query{d, probe, svc::kAllFields}})
                .snapshot_version,
            2u);
  EXPECT_EQ(server.stats().reloads, 1u);
}

TEST_F(ServiceReloadTest, IdenticalSnapshotsServeByteIdenticalAnswersDuringReload) {
  // The bench's reload mode republishes equal-content snapshots; assert the
  // byte-identical guarantee it relies on.
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  net::Date d = config_->window_begin + 30;
  auto snap_a = svc::compile_snapshot(s, index, d, 7);
  auto snap_b = svc::compile_snapshot(s, index, d, 7);

  svc::Server server(snap_a);
  std::vector<svc::Query> batch;
  for (const core::DropEntry& e : index.entries()) {
    batch.push_back(svc::Query{d, e.prefix, svc::kAllFields});
  }
  const std::string request = svc::encode_query_request(batch);
  const std::string expected = server.serve(request);

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 300 && !failed.load(); ++i) {
        if (server.serve(request) != expected) failed.store(true);
      }
    });
  }
  for (int swap = 0; swap < 300; ++swap) {
    server.publish(swap % 2 ? snap_a : snap_b);
  }
  for (std::thread& c : clients) c.join();
  EXPECT_FALSE(failed.load());
}

TEST_F(ServiceReloadTest, MultiDateRoutingSurvivesRescanAndEviction) {
  // Store mode under fire: client threads send frames mixing six dates
  // while the main thread hammers rescan() (the SIGHUP hook) against a
  // store whose LRU holds only three days, so every request races
  // eviction, re-materialization, and residency drops. Every answer must
  // stay byte-identical to a per-date compile — only the snapshot version
  // may move (re-materialized days mint fresh versions).
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);

  char dirbuf[] = "/tmp/droplens_reload_XXXXXX";
  ASSERT_NE(mkdtemp(dirbuf), nullptr);
  const std::string dir = dirbuf;

  svc::SnapshotStore::Config cfg;
  cfg.dir = dir;
  cfg.max_resident = 3;  // six dates through three slots: constant eviction
  svc::SnapshotStore store(cfg, &s, &index);
  svc::Server server(store);

  std::vector<net::Date> dates;
  for (int i = 0; i < 6; ++i) dates.push_back(config_->window_begin + 28 + i);

  // The ground truth: per-date compiles, independent of the store.
  std::vector<std::shared_ptr<const svc::Snapshot>> compiled;
  for (net::Date d : dates) {
    compiled.push_back(svc::compile_snapshot(s, index, d, 1));
  }

  // One frame interleaving all six dates.
  std::vector<svc::Query> batch;
  size_t probe_count = 0;
  for (const core::DropEntry& e : index.entries()) {
    for (net::Date d : dates) {
      batch.push_back(svc::Query{d, e.prefix, svc::kAllFields});
    }
    if (++probe_count >= 16) break;
  }
  const std::string request = svc::encode_query_request(batch);

  // Expected answers from the ground-truth snapshots, version ignored.
  svc::QueryResponse expected;
  expected.snapshot_version = 0;
  expected.date = batch.front().date;
  expected.degraded = compiled.front()->degraded();
  for (const svc::Query& q : batch) {
    size_t di = static_cast<size_t>(q.date.days() - dates.front().days());
    expected.answers.push_back(compiled[di]->lookup(q.prefix, q.fields));
  }
  const std::string expected_bytes = svc::encode_query_response(expected);

  constexpr int kClientThreads = 8;
  constexpr int kRequestsPerThread = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread && !failed.load(); ++i) {
        svc::QueryResponse got =
            svc::decode_query_response(svc::frame_payload(server.serve(request)));
        got.snapshot_version = 0;  // the only field allowed to move
        if (svc::encode_query_response(got) != expected_bytes) {
          failed.store(true);
        }
      }
    });
  }
  for (int swap = 0; swap < 400; ++swap) store.rescan();
  for (std::thread& c : clients) c.join();

  EXPECT_FALSE(failed.load())
      << "a store-mode answer diverged from its per-date compile";
  EXPECT_GT(store.stats().evictions, 0u) << "the LRU never churned";
  EXPECT_GT(store.stats().loads, 0u)
      << "rescan/eviction never forced a re-load from disk";
  EXPECT_LE(store.resident_count(), 3u + dates.size())
      << "residency unbounded";

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace droplens
