#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

namespace droplens::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("abc", '|');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyString) {
  auto parts = split("", '|');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(Strings, IContains) {
  EXPECT_TRUE(icontains("Snowshoe IP Block", "snowshoe"));
  EXPECT_TRUE(icontains("x", ""));
  EXPECT_FALSE(icontains("short", "longer than haystack"));
  EXPECT_FALSE(icontains("hijack", "hijacked"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("4294967295"), 4294967295u);
  EXPECT_THROW(parse_u64(""), ParseError);
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_u64("-1"), ParseError);
  EXPECT_THROW(parse_u64("99999999999999999999999"), ParseError);
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, ValuesFormatsNumbers) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.values("x", 42, 7u);
  EXPECT_EQ(out.str(), "x,42,7\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"wide-cell", "x"});
  std::ostringstream out;
  t.print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("a          long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
}

TEST(TextTable, RejectsWideRow) {
  TextTable t({"only"});
  EXPECT_THROW(t.add_row({"a", "b"}), std::invalid_argument);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"a", "b"});
  t.add_row({"x"});
  std::ostringstream out;
  EXPECT_NO_THROW(t.print(out));
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(1, 4), "25.0%");
  EXPECT_EQ(percent(1, 0), "n/a");
}

}  // namespace
}  // namespace droplens::util
