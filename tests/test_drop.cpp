#include <gtest/gtest.h>

#include "drop/drop_list.hpp"
#include "drop/sbl.hpp"
#include "util/error.hpp"

namespace droplens::drop {
namespace {

net::Date D(int d) { return net::Date(d); }
net::Prefix P(const char* s) { return net::Prefix::parse(s); }

TEST(CategorySet, BasicOperations) {
  CategorySet s;
  EXPECT_TRUE(s.empty());
  s.add(Category::kHijacked);
  s.add(Category::kSnowshoe);
  EXPECT_TRUE(s.has(Category::kHijacked));
  EXPECT_FALSE(s.has(Category::kUnallocated));
  EXPECT_EQ(s.count(), 2);
  EXPECT_FALSE(s.exclusive(Category::kHijacked));
  EXPECT_EQ(s.to_string(), "HJ+SS");
  CategorySet only;
  only.add(Category::kNoRecord);
  EXPECT_TRUE(only.exclusive(Category::kNoRecord));
  EXPECT_EQ(CategorySet().to_string(), "-");
}

TEST(DropList, AddRemoveLifecycle) {
  DropList list;
  list.add(P("10.0.0.0/24"), D(100), "SBL1");
  EXPECT_FALSE(list.listed_on(P("10.0.0.0/24"), D(99)));
  EXPECT_TRUE(list.listed_on(P("10.0.0.0/24"), D(100)));
  EXPECT_TRUE(list.remove(P("10.0.0.0/24"), D(200)));
  EXPECT_FALSE(list.listed_on(P("10.0.0.0/24"), D(200)));
  EXPECT_TRUE(list.listed_on(P("10.0.0.0/24"), D(199)));
  EXPECT_FALSE(list.remove(P("10.0.0.0/24"), D(300)));  // already off
  EXPECT_EQ(*list.first_listed(P("10.0.0.0/24")), D(100));
}

TEST(DropList, RelistingCreatesSecondStint) {
  DropList list;
  list.add(P("10.0.0.0/24"), D(100));
  list.remove(P("10.0.0.0/24"), D(200));
  list.add(P("10.0.0.0/24"), D(300));
  EXPECT_EQ(list.listings_of(P("10.0.0.0/24")).size(), 2u);
  EXPECT_TRUE(list.listed_on(P("10.0.0.0/24"), D(350)));
  EXPECT_EQ(*list.first_listed(P("10.0.0.0/24")), D(100));
  EXPECT_EQ(list.total_listings(), 2u);
  EXPECT_EQ(list.all_prefixes().size(), 1u);
}

TEST(DropList, DoubleAddThrows) {
  DropList list;
  list.add(P("10.0.0.0/24"), D(100));
  EXPECT_THROW(list.add(P("10.0.0.0/24"), D(150)), InvariantError);
}

TEST(DropList, CoveredOnSeesLessSpecificListings) {
  DropList list;
  list.add(P("10.0.0.0/16"), D(100));
  EXPECT_TRUE(list.covered_on(P("10.0.3.0/24"), D(150)));
  EXPECT_FALSE(list.covered_on(P("10.1.0.0/16"), D(150)));
  EXPECT_FALSE(list.covered_on(P("10.0.0.0/8"), D(150)));
  EXPECT_FALSE(list.covered_on(P("10.0.3.0/24"), D(50)));
}

TEST(DropList, SnapshotListsCurrentEntries) {
  DropList list;
  list.add(P("10.0.0.0/24"), D(100));
  list.add(P("11.0.0.0/24"), D(150));
  list.remove(P("10.0.0.0/24"), D(160));
  EXPECT_EQ(list.snapshot(D(155)).size(), 2u);
  EXPECT_EQ(list.snapshot(D(170)).size(), 1u);
  EXPECT_EQ(list.snapshot(D(50)).size(), 0u);
}

TEST(SblDatabase, AddFindRemove) {
  SblDatabase db;
  db.add(SblRecord{"SBL1", P("10.0.0.0/24"), "hijacked range"});
  ASSERT_NE(db.find("SBL1"), nullptr);
  ASSERT_NE(db.find_by_prefix(P("10.0.0.0/24")), nullptr);
  EXPECT_EQ(db.find_by_prefix(P("10.0.0.0/24"))->id, "SBL1");
  EXPECT_TRUE(db.remove("SBL1"));
  EXPECT_EQ(db.find("SBL1"), nullptr);
  EXPECT_EQ(db.find_by_prefix(P("10.0.0.0/24")), nullptr);
  EXPECT_FALSE(db.remove("SBL1"));
  EXPECT_EQ(db.size(), 0u);
}

}  // namespace
}  // namespace droplens::drop
