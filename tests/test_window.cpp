// Whole-window time-travel serving (label `window`).
//
// The contracts this file gates:
//   1. Contention — a compile-on-miss for one date must NOT block
//      concurrent get()s for other dates: the store's per-date latches are
//      the regression surface, and this binary is meant to run under BOTH
//      sanitizer presets (see tests/CMakeLists.txt):
//        cmake -B build-tsan -S . -DDROPLENS_SANITIZE=thread
//        cmake --build build-tsan -j && ctest --test-dir build-tsan -L window
//        cmake -B build-asan -S . -DDROPLENS_SANITIZE=address
//        cmake --build build-asan -j && ctest --test-dir build-asan -L window
//   2. Fidelity — a store-mode Server answers 30+ distinct dates (degraded
//      days included) identically to per-date compiles, and the range op
//      matches naive per-day lookups run for run.
//   3. Rescan — incremental: resident days with unchanged files survive a
//      rescan; changed, deleted, and file-less days are dropped.
//   4. HTTP — the metrics front consumes full requests (head + declared
//      body), so keep-alive and pipelined peers stay in sync.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "net/date.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "svc/client.hpp"
#include "svc/admin_http.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "svc/transport.hpp"
#include "util/error.hpp"

namespace droplens {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/droplens_window_XXXXXX";
    const char* p = mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    dir_ = p ? p : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

class WindowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::ScenarioConfig(sim::ScenarioConfig::small());
    world_ = sim::generate(*config_).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    delete config_;
  }
  core::Study study() const {
    return core::Study{world_->registry,    world_->fleet, world_->irr,
                       world_->roas,        world_->drop,  world_->sbl,
                       config_->window_begin, config_->window_end};
  }
  net::Date date(int offset) const { return config_->window_begin + offset; }

  static sim::ScenarioConfig* config_;
  static sim::World* world_;
};

sim::ScenarioConfig* WindowTest::config_ = nullptr;
sim::World* WindowTest::world_ = nullptr;

// ---------------------------------------------------------------------------
// 1. Contention: the per-date latch regression test.

TEST_F(WindowTest, CompileMissOnOneDateDoesNotBlockGetsForOtherDates) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  svc::SnapshotStore store({}, &s, &index);

  const net::Date hot = date(30);
  const net::Date cold = date(31);
  ASSERT_NE(store.get(hot), nullptr);  // resident before the hook arms

  std::atomic<bool> in_hook{false};
  std::atomic<bool> release{false};
  store.set_materialize_hook_for_tests([&](net::Date d) {
    if (d == cold) {
      in_hook.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  std::thread miss([&] { EXPECT_NE(store.get(cold), nullptr); });
  while (!in_hook.load()) std::this_thread::yield();

  // The cold date is now parked inside its materialization, holding its
  // own latch. A hit on another date must come straight back — under the
  // old store-wide mutex this get() deadlocked until the release below.
  const size_t hits_before = store.stats().resident_hits;
  EXPECT_NE(store.get(hot), nullptr);
  EXPECT_EQ(store.stats().resident_hits, hits_before + 1);
  EXPECT_FALSE(release.load())
      << "the hot-date hit waited out the cold-date materialization";

  // A second miss-er for the SAME cold date must dedup onto the first
  // materialization rather than compiling again.
  std::thread same([&] { EXPECT_NE(store.get(cold), nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  release.store(true);
  miss.join();
  same.join();
  EXPECT_EQ(store.stats().compiles, 2u) << "cold compiled more than once";
}

// ---------------------------------------------------------------------------
// 2. Fidelity: whole-window serving and the range op.

TEST_F(WindowTest, ServerAnswersThirtyPlusDatesIdenticalToPerDateCompiles) {
  core::Study s = study();
  core::DataQuality quality;
  s.quality = &quality;
  // Two degraded-feed days inside the probe set.
  quality.mark_day_unavailable(core::Feed::kDropFeed, date(13));
  quality.mark_day_unavailable(core::Feed::kRoas, date(25));
  quality.mark_day_unavailable(core::Feed::kIrr, date(25));
  core::DropIndex index = core::DropIndex::build(s);

  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  cfg.max_resident = 8;  // 32 dates through 8 slots: eviction on the path
  svc::SnapshotStore store(cfg, &s, &index);
  svc::Server server(store);
  svc::LoopbackConnection loop(server);
  svc::Client client(loop);

  std::vector<net::Prefix> probes;
  for (const core::DropEntry& e : index.entries()) {
    probes.push_back(e.prefix);
    if (probes.size() >= 16) break;
  }
  ASSERT_FALSE(probes.empty());

  int degraded_days = 0;
  for (int i = 0; i < 32; ++i) {
    net::Date d = date(1 + i);
    auto truth = svc::compile_snapshot(s, index, d, 1);
    std::vector<svc::Query> batch;
    for (const net::Prefix& p : probes) {
      batch.push_back(svc::Query{d, p, svc::kAllFields});
    }
    svc::QueryResponse resp = client.query(batch);
    EXPECT_EQ(resp.date, d);
    EXPECT_EQ(resp.degraded, truth->degraded()) << d.to_string();
    if (truth->degraded()) ++degraded_days;
    ASSERT_EQ(resp.answers.size(), batch.size());
    for (size_t q = 0; q < batch.size(); ++q) {
      EXPECT_EQ(resp.answers[q],
                truth->lookup(batch[q].prefix, batch[q].fields))
          << d.to_string() << " " << batch[q].prefix.to_string();
    }
  }
  EXPECT_GE(degraded_days, 2) << "the degraded days fell outside the sweep";
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST_F(WindowTest, OneFrameMayMixDatesAndUnservableDatesAnswerUnavailable) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  svc::SnapshotStore store({}, &s, &index);
  svc::Server server(store);

  net::Prefix probe = index.entries().front().prefix;
  const net::Date in1 = date(40);
  const net::Date in2 = date(41);
  const net::Date outside = net::Date(config_->window_begin.days() - 10);
  std::vector<svc::Query> batch = {
      svc::Query{in1, probe, svc::kAllFields},
      svc::Query{outside, probe, svc::kAllFields},
      svc::Query{in2, probe, svc::kAllFields},
  };
  svc::QueryResponse resp = svc::decode_query_response(svc::frame_payload(
      server.serve(svc::encode_query_request(batch))));
  ASSERT_EQ(resp.answers.size(), 3u);
  EXPECT_EQ(resp.date, in1) << "header metadata follows the first query";
  EXPECT_EQ(resp.answers[0].status,
            static_cast<uint8_t>(svc::QueryStatus::kOk));
  EXPECT_EQ(resp.answers[1].status,
            static_cast<uint8_t>(svc::QueryStatus::kUnavailable));
  EXPECT_EQ(resp.answers[2].status,
            static_cast<uint8_t>(svc::QueryStatus::kOk));
  auto truth1 = svc::compile_snapshot(s, index, in1, 1);
  auto truth2 = svc::compile_snapshot(s, index, in2, 1);
  EXPECT_EQ(resp.answers[0], truth1->lookup(probe, svc::kAllFields));
  EXPECT_EQ(resp.answers[2], truth2->lookup(probe, svc::kAllFields));
}

TEST_F(WindowTest, RangeQueryMatchesNaivePerDayLookups) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  svc::SnapshotStore store({}, &s, &index);
  svc::Server server(store);
  svc::LoopbackConnection loop(server);
  svc::Client client(loop);

  net::Prefix probe = index.entries().front().prefix;
  const net::Date d0 = date(20);
  const net::Date d1 = date(20 + 39);  // 40 days
  svc::RangeResponse rr = client.range(d0, d1, probe);
  EXPECT_EQ(rr.prefix, probe);

  // Expand the runs and compare each day to an independent lookup.
  std::map<int32_t, const svc::RangeRun*> per_day;
  for (const svc::RangeRun& run : rr.runs) {
    for (uint32_t k = 0; k < run.days; ++k) {
      per_day[run.start.days() + static_cast<int32_t>(k)] = &run;
    }
  }
  ASSERT_EQ(per_day.size(), 40u) << "runs must cover the window exactly";
  for (int32_t dd = d0.days(); dd <= d1.days(); ++dd) {
    net::Date d{dd};
    const svc::RangeRun* run = per_day.at(dd);
    auto snap = store.get(d);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(run->answer, snap->lookup(probe, svc::kAllFields))
        << d.to_string();
    EXPECT_EQ(run->degraded, snap->degraded()) << d.to_string();
  }
  // Runs are maximal: adjacent runs must actually differ.
  for (size_t i = 1; i < rr.runs.size(); ++i) {
    EXPECT_TRUE(rr.runs[i].answer != rr.runs[i - 1].answer ||
                rr.runs[i].degraded != rr.runs[i - 1].degraded)
        << "run " << i << " should have merged into its predecessor";
  }
}

TEST_F(WindowTest, RangeSpanningTheWindowEdgeYieldsUnavailableRuns) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  svc::SnapshotStore store({}, &s, &index);
  svc::Server server(store);
  svc::LoopbackConnection loop(server);
  svc::Client client(loop);

  net::Prefix probe = index.entries().front().prefix;
  const net::Date before = net::Date(config_->window_begin.days() - 3);
  const net::Date into = config_->window_begin + 2;
  svc::RangeResponse rr = client.range(before, into, probe);
  ASSERT_FALSE(rr.runs.empty());
  EXPECT_EQ(rr.runs.front().start, before);
  EXPECT_EQ(rr.runs.front().answer.status,
            static_cast<uint8_t>(svc::QueryStatus::kUnavailable));
  EXPECT_EQ(rr.runs.front().days, 3u);
  uint32_t total = 0;
  for (const svc::RangeRun& run : rr.runs) total += run.days;
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(rr.runs.back().answer.status,
            static_cast<uint8_t>(svc::QueryStatus::kOk));
}

TEST_F(WindowTest, SingleSnapshotServerRefusesRangeQueries) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  auto snap = svc::compile_snapshot(s, index, date(30), 1);
  svc::Server server(snap);
  svc::LoopbackConnection loop(server);
  svc::Client client(loop);
  EXPECT_THROW(
      client.range(date(30), date(31), index.entries().front().prefix),
      std::runtime_error);
}

TEST(WindowProtocol, RangeCodecsValidateHostileInput) {
  svc::RangeQuery rq;
  rq.begin = net::Date::parse("2019-08-04");
  rq.end = net::Date::parse("2019-09-04");
  rq.prefix = net::Prefix::parse("203.0.113.0/24");
  rq.fields = svc::kAllFields;
  const std::string payload(
      svc::frame_payload(svc::encode_range_request(rq)));
  EXPECT_EQ(svc::decode_range_request(payload), rq);

  // The encoder refuses a bad window outright...
  svc::RangeQuery bad = rq;
  bad.end = net::Date(rq.begin.days() - 1);
  EXPECT_THROW(svc::encode_range_request(bad), InvariantError);

  // ...and the decoder refuses one arriving off the wire. Payload layout:
  // begin:u32 end:u32 network:u32 plen:u8 fields:u8 — swapping begin and
  // end inverts the window without assuming byte order.
  std::string inverted = payload;
  std::swap_ranges(inverted.begin(), inverted.begin() + 4,
                   inverted.begin() + 4);
  EXPECT_THROW(svc::decode_range_request(inverted), ParseError);

  // Zeroing `begin` (the epoch) stretches the span past kMaxRangeDays.
  std::string oversized = payload;
  std::fill(oversized.begin(), oversized.begin() + 4, '\0');
  EXPECT_THROW(svc::decode_range_request(oversized), ParseError);

  // Responses whose runs leave a gap pass the encoder (it only bounds the
  // run count) but must die in the decoder's contiguity check.
  svc::RangeResponse gapped;
  gapped.prefix = rq.prefix;
  gapped.fields = rq.fields;
  gapped.runs.push_back(svc::RangeRun{rq.begin, 2, 0, svc::Answer{}});
  gapped.runs.push_back(
      svc::RangeRun{net::Date(rq.begin.days() + 3), 1, 0, svc::Answer{}});
  EXPECT_THROW(svc::decode_range_response(
                   svc::frame_payload(svc::encode_range_response(gapped))),
               ParseError);
}

// ---------------------------------------------------------------------------
// 3. Incremental rescan.

TEST_F(WindowTest, RescanKeepsUnchangedDaysAndDropsChangedOrDeletedOnes) {
  core::Study s = study();
  core::DropIndex index = core::DropIndex::build(s);
  TempDir tmp;
  svc::SnapshotStore::Config cfg;
  cfg.dir = tmp.dir();
  svc::SnapshotStore store(cfg, &s, &index);

  const net::Date a = date(30);
  const net::Date b = date(31);
  const net::Date c = date(32);
  auto snap_a = store.get(a);
  auto snap_b = store.get(b);
  auto snap_c = store.get(c);
  ASSERT_EQ(store.resident_count(), 3u);

  // Nothing changed on disk: rescan is a no-op for all three days, and a
  // re-get serves the very same object (no thundering herd of re-mmaps).
  store.rescan();
  EXPECT_EQ(store.resident_count(), 3u);
  EXPECT_EQ(store.get(a).get(), snap_a.get());
  EXPECT_EQ(store.stats().loads, 0u) << "an unchanged day was re-loaded";

  // Touch b's file (same bytes, newer mtime): that day — and only that
  // day — must drop and re-materialize.
  fs::last_write_time(store.path_for(b),
                      fs::file_time_type::clock::now() +
                          std::chrono::seconds(2));
  store.rescan();
  EXPECT_EQ(store.resident_count(), 2u);
  auto snap_b2 = store.get(b);
  EXPECT_NE(snap_b2.get(), snap_b.get());
  EXPECT_GT(snap_b2->version(), snap_b->version())
      << "a re-materialized day must mint a fresh version";
  EXPECT_EQ(store.stats().loads, 1u);

  // Delete c's file: rescan drops the day, and (window-bounded) compile
  // brings it back with a fresh version.
  fs::remove(store.path_for(c));
  store.rescan();
  EXPECT_EQ(store.resident_count(), 2u);
  auto snap_c2 = store.get(c);
  ASSERT_NE(snap_c2, nullptr);
  EXPECT_NE(snap_c2.get(), snap_c.get());

  // A memory-only store has no files to compare against: rescan drops
  // everything (the pre-store behavior, now per-day).
  svc::SnapshotStore mem({}, &s, &index);
  mem.get(a);
  ASSERT_EQ(mem.resident_count(), 1u);
  mem.rescan();
  EXPECT_EQ(mem.resident_count(), 0u);
}

// ---------------------------------------------------------------------------
// 4. HTTP keep-alive / pipelining.

TEST(WindowHttp, MessageSizeConsumesDeclaredBodies) {
  obs::Registry reg;
  svc::AdminHttpService http(reg);

  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::string with_body =
      "POST /metrics HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  const std::string old_close = "GET /nope HTTP/1.0\r\n\r\n";

  // Three pipelined requests in one buffer: each message ends exactly
  // where the next begins — body bytes are consumed, never re-parsed.
  std::string buf = get + with_body + old_close;
  ASSERT_EQ(http.message_size(buf), get.size());
  std::string r1 = http.serve(buf.substr(0, get.size()));
  EXPECT_NE(r1.find("200 OK"), std::string::npos);
  EXPECT_NE(r1.find("Connection: keep-alive"), std::string::npos);

  buf.erase(0, get.size());
  ASSERT_EQ(http.message_size(buf), with_body.size())
      << "the declared body was not consumed";
  std::string r2 = http.serve(buf.substr(0, with_body.size()));
  EXPECT_NE(r2.find("405"), std::string::npos);
  EXPECT_NE(r2.find("Connection: keep-alive"), std::string::npos);

  buf.erase(0, with_body.size());
  ASSERT_EQ(http.message_size(buf), old_close.size());
  std::string r3 = http.serve(buf);
  EXPECT_NE(r3.find("404"), std::string::npos);
  EXPECT_NE(r3.find("Connection: close"), std::string::npos)
      << "HTTP/1.0 without a keep-alive header defaults to close";

  // An HTTP/1.1 request asking to close gets a close.
  std::string asked =
      http.serve("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(asked.find("Connection: close"), std::string::npos);

  // A partially-arrived body is not a message yet.
  const std::string partial =
      "GET /metrics HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
  EXPECT_EQ(http.message_size(partial), 0u);
  EXPECT_EQ(http.message_size(partial + "1234567"), partial.size() + 7);

  // Unparseable and oversized Content-Length kill the stream, typed.
  EXPECT_THROW(http.message_size(
                   "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
               ParseError);
  EXPECT_THROW(http.message_size(
                   "GET / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
               ParseError);
}

TEST(WindowHttp, KeepAliveOverTcpSurvivesRequestBodies) {
  obs::Registry reg;
  svc::AdminHttpService http(reg);
  svc::TcpServer tcp(http);

  // A response framer: head plus its declared Content-Length body.
  auto framer = [](std::string_view b) -> size_t {
    size_t head = b.find("\r\n\r\n");
    if (head == std::string_view::npos) return 0;
    head += 4;
    size_t cl = b.find("Content-Length: ");
    size_t body = 0;
    if (cl != std::string_view::npos && cl < head) {
      body = static_cast<size_t>(
          std::atoll(std::string(b.substr(cl + 16, 20)).c_str()));
    }
    return b.size() >= head + body ? head + body : 0;
  };
  svc::TcpClientConnection conn("127.0.0.1", tcp.port(), framer);

  // A GET carrying a (pointless but legal) body used to desync the stream
  // and poison every request after it on the same connection.
  std::string r1 = conn.roundtrip(
      "GET /metrics HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyz");
  EXPECT_NE(r1.find("200 OK"), std::string::npos);
  std::string r2 = conn.roundtrip("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(r2.find("200 OK"), std::string::npos);
  EXPECT_EQ(tcp.connections_accepted(), 1u)
      << "the second request should ride the same connection";
  tcp.stop();
}

}  // namespace
}  // namespace droplens
