// Gao–Rexford propagation on hand-built graphs, and the impact analysis on
// the small world.
#include <gtest/gtest.h>

#include "bgp/topology.hpp"
#include "core/impact.hpp"
#include "sim/generator.hpp"

namespace droplens::bgp {
namespace {

net::Asn A(uint32_t v) { return net::Asn(v); }

// Topology:          T1 --peer-- T2
//                   /  \           \
//                  A    B           C
//                  |
//                  S
class PropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph.add_provider_customer(A(1), A(10));   // T1 -> A
    graph.add_provider_customer(A(1), A(11));   // T1 -> B
    graph.add_provider_customer(A(2), A(12));   // T2 -> C
    graph.add_provider_customer(A(10), A(100)); // A -> S
    graph.add_peering(A(1), A(2));
  }
  AsGraph graph;
};

TEST_F(PropagationTest, SingleOriginReachesEveryone) {
  PropagationResult r = propagate(graph, {{A(100), false}});
  EXPECT_EQ(r.believers(A(100)), graph.as_count());
  // Sources follow Gao-Rexford: A learns from its customer, T2 over the
  // peering, B and C from their providers.
  EXPECT_EQ(r.routes.at(A(10)).source, RouteSource::kCustomer);
  EXPECT_EQ(r.routes.at(A(1)).source, RouteSource::kCustomer);
  EXPECT_EQ(r.routes.at(A(2)).source, RouteSource::kPeer);
  EXPECT_EQ(r.routes.at(A(11)).source, RouteSource::kProvider);
  EXPECT_EQ(r.routes.at(A(12)).source, RouteSource::kProvider);
  EXPECT_EQ(r.routes.at(A(100)).source, RouteSource::kOrigin);
  // Path lengths accumulate hop by hop.
  EXPECT_EQ(r.routes.at(A(12)).path_length, 4);
}

TEST_F(PropagationTest, ValleyFreeness) {
  // A route learned over the T1--T2 peering must not be re-exported to
  // another peer, only downward. With S originating, T2's customers hear
  // it but a hypothetical third peer of T2 must not.
  graph.add_peering(A(2), A(3));  // T3, peer of T2 only
  PropagationResult r = propagate(graph, {{A(100), false}});
  EXPECT_FALSE(r.routes.contains(A(3)));
}

TEST_F(PropagationTest, CustomerRoutePreferredOverShorterPeerRoute) {
  // T1 hears S via customer A (2 hops). Give T1 a peer that originates a
  // competing prefix origination closer: preference still favors customer.
  graph.add_peering(A(1), A(5));
  PropagationResult r =
      propagate(graph, {{A(100), false}, {A(5), false}});
  EXPECT_EQ(r.routes.at(A(1)).origin, A(100));
  EXPECT_EQ(r.routes.at(A(1)).source, RouteSource::kCustomer);
}

TEST_F(PropagationTest, ContestSplitsByDistance) {
  // Victim S under A; attacker X under C: each side keeps its own region.
  graph.add_provider_customer(A(12), A(200));  // C -> X
  PropagationResult r =
      propagate(graph, {{A(100), false}, {A(200), false}});
  EXPECT_EQ(r.routes.at(A(10)).origin, A(100));
  EXPECT_EQ(r.routes.at(A(1)).origin, A(100));
  EXPECT_EQ(r.routes.at(A(12)).origin, A(200));
  EXPECT_EQ(r.routes.at(A(2)).origin, A(200));
  EXPECT_EQ(r.believers(A(100)) + r.believers(A(200)), graph.as_count());
}

TEST_F(PropagationTest, RovEnforcersDropInvalidRoutes) {
  graph.add_provider_customer(A(12), A(200));  // attacker stub under C
  // Without ROV the attacker captures the T2 side.
  PropagationResult plain =
      propagate(graph, {{A(100), false}, {A(200), true}}, {});
  EXPECT_EQ(plain.routes.at(A(2)).origin, A(200));
  // T2 and C enforcing ROV refuse the invalid route; the whole graph
  // converges on the victim (the attacker stub itself also enforces? no —
  // only T2/C do, so X still believes itself).
  PropagationResult protected_world =
      propagate(graph, {{A(100), false}, {A(200), true}}, {A(2), A(12)});
  EXPECT_EQ(protected_world.routes.at(A(2)).origin, A(100));
  EXPECT_EQ(protected_world.routes.at(A(12)).origin, A(100));
  EXPECT_EQ(protected_world.believers(A(200)), 1u);  // only X itself
}

TEST_F(PropagationTest, EnforcingEverywhereEliminatesTheInvalidRoute) {
  graph.add_provider_customer(A(12), A(200));
  std::unordered_set<net::Asn> all;
  for (net::Asn as : graph.ases()) all.insert(as);
  PropagationResult r =
      propagate(graph, {{A(100), false}, {A(200), true}}, all);
  EXPECT_EQ(r.believers(A(200)), 0u);
  EXPECT_EQ(r.believers(A(100)), graph.as_count());
}

}  // namespace
}  // namespace droplens::bgp

namespace droplens::core {
namespace {

TEST(Impact, GraphFromFleetDerivesEdgesAndTopMesh) {
  bgp::CollectorFleet fleet;
  uint32_t c = fleet.add_collector("rv");
  fleet.add_peer(c, net::Asn(9000));
  fleet.announce(net::Prefix::parse("10.0.0.0/16"),
                 bgp::AsPath{net::Asn(1), net::Asn(10), net::Asn(100)},
                 {net::Date(0), net::DateRange::unbounded()});
  fleet.announce(net::Prefix::parse("11.0.0.0/16"),
                 bgp::AsPath{net::Asn(2), net::Asn(200)},
                 {net::Date(0), net::DateRange::unbounded()});
  bgp::AsGraph graph = build_graph_from_fleet(fleet);
  EXPECT_EQ(graph.as_count(), 5u);
  // 1 and 2 never appear as customers: they form the top mesh.
  EXPECT_EQ(graph.peers(net::Asn(1)).size(), 1u);
  EXPECT_EQ(graph.peers(net::Asn(1))[0], net::Asn(2));
  EXPECT_EQ(graph.customers(net::Asn(10))[0], net::Asn(100));
  // Routes originated at 100 reach 200 across the mesh.
  bgp::PropagationResult r =
      bgp::propagate(graph, {{net::Asn(100), false}});
  EXPECT_TRUE(r.routes.contains(net::Asn(200)));
}

TEST(Impact, RovAdoptionCurveOnSmallWorld) {
  sim::ScenarioConfig config = sim::ScenarioConfig::small();
  std::unique_ptr<sim::World> world = sim::generate(config);
  Study study{world->registry, world->fleet,  world->irr,
              world->roas,     world->drop,   world->sbl,
              config.window_begin, config.window_end};
  DropIndex index = DropIndex::build(study);
  ImpactResult r =
      analyze_rov_adoption(study, index, {0.0, 0.5, 1.0});
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_GT(r.hijacks_evaluated, 0u);
  EXPECT_GT(r.graph_ases, 100u);
  // Without ROAs, adoption changes nothing.
  for (const AdoptionPoint& p : r.points) {
    EXPECT_NEAR(p.capture_unsigned, r.points[0].capture_unsigned, 1e-9);
  }
  // With ROAs, capture falls monotonically as adoption rises, from equal
  // at zero adoption to (almost) nothing at full adoption.
  EXPECT_NEAR(r.points[0].capture_signed, r.points[0].capture_unsigned,
              1e-9);
  EXPECT_GE(r.points[0].capture_signed, r.points[1].capture_signed);
  EXPECT_GE(r.points[1].capture_signed, r.points[2].capture_signed);
  EXPECT_LT(r.points[2].capture_signed, 0.01);
}

}  // namespace
}  // namespace droplens::core
