// Parser robustness: every text/binary parser must either succeed or throw
// ParseError on arbitrary input — never crash, hang, or throw anything else.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt.hpp"
#include "bgp/table_dump.hpp"
#include "drop/feed.hpp"
#include "irr/rpsl.hpp"
#include "net/date.hpp"
#include "net/prefix.hpp"
#include "rir/delegation.hpp"
#include "rpki/roa_csv.hpp"
#include "rpki/rtr.hpp"
#include "sim/rng.hpp"
#include "util/error.hpp"
#include "util/parse_report.hpp"

namespace droplens {
namespace {

std::string random_bytes(sim::Rng& rng, size_t max_len) {
  size_t len = rng.below(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.below(256));
  return out;
}

std::string random_texty(sim::Rng& rng, size_t max_len) {
  // Bias toward the characters the parsers care about.
  static const char kAlphabet[] =
      "0123456789./:,|;!@ \n\tASroutemfignrs-ORGRADB";
  size_t len = rng.below(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) {
    c = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

template <typename Fn>
void fuzz(uint64_t seed, int rounds, size_t max_len, bool texty, Fn&& parse) {
  sim::Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    std::string input =
        texty ? random_texty(rng, max_len) : random_bytes(rng, max_len);
    try {
      parse(input);
    } catch (const ParseError&) {
      // expected for malformed input
    } catch (const std::exception& e) {
      FAIL() << "non-ParseError exception (" << e.what() << ") on round "
             << i;
    }
  }
}

TEST(ParserFuzz, Prefix) {
  fuzz(1, 2000, 40, true,
       [](const std::string& s) { (void)net::Prefix::parse(s); });
}

TEST(ParserFuzz, Date) {
  fuzz(2, 2000, 16, true,
       [](const std::string& s) { (void)net::Date::parse(s); });
}

TEST(ParserFuzz, Rpsl) {
  fuzz(3, 1000, 400, true,
       [](const std::string& s) { (void)irr::parse_rpsl(s); });
}

TEST(ParserFuzz, DelegationFile) {
  fuzz(4, 1000, 400, true, [](const std::string& s) {
    (void)rir::parse_delegation_file(s);
  });
}

TEST(ParserFuzz, DropFeed) {
  fuzz(5, 1000, 400, true,
       [](const std::string& s) { (void)drop::parse_drop_feed(s); });
}

TEST(ParserFuzz, RoaCsv) {
  fuzz(6, 1000, 400, true,
       [](const std::string& s) { (void)rpki::parse_roa_csv(s); });
}

TEST(ParserFuzz, TableDump) {
  fuzz(7, 1000, 400, true,
       [](const std::string& s) { (void)bgp::parse_table_dump(s); });
}

TEST(ParserFuzz, MrtlBinary) {
  fuzz(8, 1000, 200, false, [](const std::string& s) {
    std::stringstream buf(s);
    (void)bgp::read_mrtl(buf);
  });
}

TEST(ParserFuzz, RtrBinary) {
  fuzz(9, 2000, 120, false,
       [](const std::string& s) { (void)rpki::parse_pdus(s); });
}

TEST(ParserFuzz, MutatedValidMrtl) {
  // Flip bytes in a valid stream: parse must still never crash.
  std::vector<bgp::Update> updates = {
      bgp::Update{net::Date(100), 1, bgp::UpdateType::kAnnounce,
                  net::Prefix::parse("10.0.0.0/8"),
                  bgp::AsPath{net::Asn(1), net::Asn(2)}},
  };
  std::stringstream buf;
  bgp::write_mrtl(buf, updates);
  std::string bytes = buf.str();
  sim::Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = bytes;
    mutated[rng.below(mutated.size())] =
        static_cast<char>(rng.below(256));
    std::stringstream in(mutated);
    try {
      (void)bgp::read_mrtl(in);
    } catch (const ParseError&) {
    }
  }
}

TEST(ParserFuzz, MutatedValidRtr) {
  rpki::Pdu pdu;
  pdu.type = rpki::PduType::kIpv4Prefix;
  pdu.vrp = rpki::Vrp{net::Prefix::parse("10.0.0.0/16"), 24, net::Asn(1)};
  std::string bytes = rpki::serialize_pdu(pdu);
  sim::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = bytes;
    mutated[rng.below(mutated.size())] =
        static_cast<char>(rng.below(256));
    try {
      (void)rpki::parse_pdus(mutated);
    } catch (const ParseError&) {
    }
  }
}

TEST(ParserFuzz, ClassifierNeverThrows) {
  drop::Classifier classifier;
  sim::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    std::string text = random_bytes(rng, 300);
    EXPECT_NO_THROW((void)classifier.classify(text));
  }
}

// Lenient mode strengthens the contract for the text parsers: arbitrary
// input must not throw AT ALL — every malformed record lands in the
// ParseReport instead, and parsed + nothing-extra always holds.
template <typename Fn>
void fuzz_lenient(uint64_t seed, int rounds, size_t max_len, Fn&& parse) {
  sim::Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    std::string input = random_texty(rng, max_len);
    util::ParseReport report("fuzz");
    try {
      size_t records = parse(input, &report);
      ASSERT_EQ(records, report.parsed()) << "round " << i;
    } catch (const std::exception& e) {
      FAIL() << "lenient parse threw (" << e.what() << ") on round " << i;
    }
  }
}

TEST(ParserFuzz, LenientRpslNeverThrows) {
  fuzz_lenient(13, 1000, 400,
               [](const std::string& s, util::ParseReport* r) {
                 return irr::parse_rpsl(s, util::ParsePolicy::kLenient, r)
                     .size();
               });
}

TEST(ParserFuzz, LenientDelegationNeverThrows) {
  fuzz_lenient(14, 1000, 400,
               [](const std::string& s, util::ParseReport* r) {
                 return rir::parse_delegation_file(
                            s, util::ParsePolicy::kLenient, r)
                     .size();
               });
}

TEST(ParserFuzz, LenientDropFeedNeverThrows) {
  fuzz_lenient(15, 1000, 400,
               [](const std::string& s, util::ParseReport* r) {
                 return drop::parse_drop_feed(s, util::ParsePolicy::kLenient,
                                              r)
                     .size();
               });
}

TEST(ParserFuzz, LenientRoaCsvNeverThrows) {
  fuzz_lenient(16, 1000, 400,
               [](const std::string& s, util::ParseReport* r) {
                 return rpki::parse_roa_csv(s, util::ParsePolicy::kLenient, r)
                     .size();
               });
}

TEST(ParserFuzz, LenientMrtlThrowsOnlyForUnusableHeaders) {
  // MRTL is binary: record damage is skipped-and-counted, but a broken
  // magic/version/count header stays fatal — still only ever a ParseError.
  sim::Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    std::string input = random_bytes(rng, 200);
    std::stringstream in(input);
    util::ParseReport report("fuzz.mrtl");
    try {
      std::vector<bgp::Update> updates =
          bgp::read_mrtl(in, util::ParsePolicy::kLenient, &report);
      EXPECT_EQ(updates.size(), report.parsed()) << "round " << i;
    } catch (const ParseError&) {
      // header unusable: the caller marks the whole day unavailable
    } catch (const std::exception& e) {
      FAIL() << "non-ParseError exception (" << e.what() << ") on round "
             << i;
    }
  }
}

}  // namespace
}  // namespace droplens
