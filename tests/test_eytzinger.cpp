// Differential property tests for the Eytzinger fast path.
//
// Every accelerated answer — scalar and batched, on EytzingerIndex itself,
// on both substrates, and on assembled Snapshots — is cross-checked against
// the plain std::upper_bound reference over randomized and adversarial
// shapes: dense /24 runs, singleton intervals, full-range spans, empty
// sets, duplicate-heavy key arrays, and boundary probes at begin-1 / begin
// / end-1 / end of every element. Runs under both the ASan and TSan CI
// presets (label `scale`); the multi-thread hammer at the bottom is the
// TSan gate for the read-only index contract.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/eytzinger.hpp"
#include "net/interval_set.hpp"
#include "net/segment_map.hpp"
#include "svc/snapshot.hpp"

namespace droplens {
namespace {

using net::EytzingerIndex;
using net::IntervalSet;
using net::Prefix;
using net::SegmentMap;

// ---------------------------------------------------------------- index --

std::vector<uint64_t> random_sorted_keys(std::mt19937_64& rng, size_t n,
                                         uint64_t universe, bool dupes) {
  std::vector<uint64_t> keys(n);
  for (uint64_t& k : keys) k = rng() % universe;
  if (dupes && n > 4) {
    // Force runs of equal keys — upper_bound must land after the whole run.
    for (size_t i = 0; i + 1 < n; i += 3) keys[i + 1] = keys[i];
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void check_index_matches_std(const std::vector<uint64_t>& keys,
                             const std::vector<uint64_t>& probes) {
  EytzingerIndex idx;
  idx.build(keys.size(), [&](size_t i) { return keys[i]; });
  ASSERT_TRUE(idx.built());
  ASSERT_EQ(idx.size(), keys.size());
  std::vector<uint32_t> batch(probes.size());
  idx.upper_bound_batch(probes, batch.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto expect = static_cast<uint32_t>(
        std::upper_bound(keys.begin(), keys.end(), probes[i]) - keys.begin());
    ASSERT_EQ(idx.upper_bound(probes[i]), expect)
        << "scalar, probe " << probes[i] << " over n=" << keys.size();
    ASSERT_EQ(batch[i], expect)
        << "batched, probe " << probes[i] << " over n=" << keys.size();
  }
}

TEST(EytzingerIndex, MatchesStdUpperBoundAcrossSizes) {
  std::mt19937_64 rng(0xE17);
  // Power-of-two boundaries stress the padded-tree layout; the probe list
  // hits every key and its neighbours plus randoms.
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 100u, 255u,
                   256u, 257u, 1000u, 4095u, 4096u, 4097u}) {
    for (bool dupes : {false, true}) {
      std::vector<uint64_t> keys =
          random_sorted_keys(rng, n, uint64_t{1} << 32, dupes);
      std::vector<uint64_t> probes;
      for (uint64_t k : keys) {
        if (k > 0) probes.push_back(k - 1);
        probes.push_back(k);
        probes.push_back(k + 1);
      }
      for (int i = 0; i < 64; ++i) probes.push_back(rng() % (uint64_t{1} << 33));
      probes.push_back(0);
      probes.push_back(~uint64_t{0} >> 1);
      check_index_matches_std(keys, probes);
    }
  }
}

TEST(EytzingerIndex, BatchTailsOfEveryLength) {
  // The batched path splits into 16-lane stripes plus a scalar tail; cover
  // every tail length and the empty batch.
  std::mt19937_64 rng(0xBA7C);
  std::vector<uint64_t> keys = random_sorted_keys(rng, 1000, 1 << 20, true);
  EytzingerIndex idx;
  idx.build(keys.size(), [&](size_t i) { return keys[i]; });
  for (size_t len = 0; len <= 40; ++len) {
    std::vector<uint64_t> probes(len);
    for (uint64_t& p : probes) p = rng() % (1 << 21);
    std::vector<uint32_t> out(len, 0xdeadbeef);
    idx.upper_bound_batch(probes, out.data());
    for (size_t i = 0; i < len; ++i) {
      EXPECT_EQ(out[i], static_cast<uint32_t>(
                            std::upper_bound(keys.begin(), keys.end(),
                                             probes[i]) -
                            keys.begin()));
    }
  }
}

TEST(EytzingerIndex, ClearAndRebuild) {
  EytzingerIndex idx;
  idx.build(3, [](size_t i) { return uint64_t{10} * (i + 1); });
  EXPECT_EQ(idx.upper_bound(15), 1u);
  idx.clear();
  EXPECT_FALSE(idx.built());
  idx.build(1, [](size_t) { return uint64_t{7}; });
  EXPECT_EQ(idx.upper_bound(6), 0u);
  EXPECT_EQ(idx.upper_bound(7), 1u);
}

// ----------------------------------------------------------- substrates --

// Adversarial interval shapes the issue calls out, plus randomized sets.
std::vector<IntervalSet> adversarial_sets() {
  std::vector<IntervalSet> sets;
  sets.emplace_back();  // empty
  {
    IntervalSet s;  // full range
    s.insert(0, uint64_t{1} << 32);
    sets.push_back(std::move(s));
  }
  {
    IntervalSet s;  // singletons: single-address intervals, gap of one
    for (uint64_t a = 1 << 20; a < (1 << 20) + 4096; a += 2) s.insert(a, a + 1);
    sets.push_back(std::move(s));
  }
  {
    IntervalSet s;  // dense /24 run: adjacent except every 16th missing
    for (uint64_t i = 0; i < 2048; ++i) {
      if (i % 16 == 15) continue;
      const uint64_t b = (uint64_t{10} << 24) + i * 256;
      s.insert(b, b + 256);
    }
    sets.push_back(std::move(s));
  }
  {
    IntervalSet s;  // edges of the space
    s.insert(0, 1);
    s.insert((uint64_t{1} << 32) - 1, uint64_t{1} << 32);
    sets.push_back(std::move(s));
  }
  std::mt19937_64 rng(0x5E75);
  for (int k = 0; k < 8; ++k) {
    IntervalSet s;
    const int n = 1 << (2 * k % 11);
    for (int i = 0; i < n; ++i) {
      const uint64_t b = rng() % (uint64_t{1} << 32);
      const uint64_t len = 1 + rng() % 100'000;
      s.insert(b, std::min(b + len, uint64_t{1} << 32));
    }
    sets.push_back(std::move(s));
  }
  return sets;
}

std::vector<Prefix> probes_for(const IntervalSet& s, std::mt19937_64& rng) {
  std::vector<Prefix> probes;
  auto add = [&](uint64_t addr) {
    if (addr >= (uint64_t{1} << 32)) return;
    for (int len : {32, 24, 16, 8}) {
      probes.push_back(
          Prefix::containing(net::Ipv4(static_cast<uint32_t>(addr)), len));
    }
  };
  size_t budget = 512;  // cap boundary probes on huge sets
  for (const auto& iv : s.intervals()) {
    if (budget-- == 0) break;
    add(iv.begin == 0 ? 0 : iv.begin - 1);
    add(iv.begin);
    add(iv.end - 1);
    add(iv.end);
  }
  for (int i = 0; i < 256; ++i) add(rng() % (uint64_t{1} << 32));
  return probes;
}

TEST(IntervalSetDifferential, IndexedMatchesReference) {
  std::mt19937_64 rng(0xD1FF);
  for (IntervalSet& s : adversarial_sets()) {
    s.build_index();
    ASSERT_EQ(s.has_fast_index(), true);
    const std::vector<Prefix> probes = probes_for(s, rng);
    std::vector<uint64_t> addrs;
    for (const Prefix& p : probes) addrs.push_back(p.first());
    std::vector<uint8_t> got_contains(probes.size());
    std::vector<uint8_t> got_intersects(probes.size());
    s.contains_batch(addrs, got_contains.data());
    s.intersects_batch(probes, got_intersects.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      const Prefix& p = probes[i];
      const net::Ipv4 first(static_cast<uint32_t>(p.first()));
      ASSERT_EQ(s.contains(first), s.contains_reference(first))
          << p.to_string();
      ASSERT_EQ(s.covers(p), s.covers_reference(p)) << p.to_string();
      ASSERT_EQ(s.intersects(p), s.intersects_reference(p)) << p.to_string();
      ASSERT_EQ(got_contains[i] != 0, s.contains_reference(first))
          << p.to_string();
      ASSERT_EQ(got_intersects[i] != 0, s.intersects_reference(p))
          << p.to_string();
    }
  }
}

TEST(IntervalSetDifferential, MutationDropsIndexAndAnswersStayCorrect) {
  IntervalSet s;
  for (uint64_t i = 0; i < 100; ++i) s.insert(i * 1000, i * 1000 + 500);
  s.build_index();
  ASSERT_TRUE(s.has_fast_index());
  s.insert(50, 60);  // mutation invalidates the permutation
  EXPECT_FALSE(s.has_fast_index());
  EXPECT_TRUE(s.contains(net::Ipv4(55)));  // reference fallback still right
  s.build_index();
  EXPECT_TRUE(s.has_fast_index());
  EXPECT_TRUE(s.contains(net::Ipv4(55)));
  s.erase(50, 60);
  EXPECT_FALSE(s.has_fast_index());
  EXPECT_FALSE(s.contains(net::Ipv4(55)));
}

TEST(IntervalSetDifferential, ViewAndFromSortedCarryTheIndex) {
  std::vector<IntervalSet::Interval> ivs;
  for (uint64_t i = 0; i < 1000; ++i) {
    ivs.push_back({i * 512, i * 512 + 256});
  }
  IntervalSet v = IntervalSet::view(ivs);
  EXPECT_TRUE(v.has_fast_index());
  IntervalSet f = IntervalSet::from_sorted(ivs);
  EXPECT_TRUE(f.has_fast_index());
  for (uint64_t a : {uint64_t{0}, uint64_t{255}, uint64_t{256}, uint64_t{300},
                     uint64_t{511}, uint64_t{512}, uint64_t{999} * 512}) {
    const net::Ipv4 addr(static_cast<uint32_t>(a));
    EXPECT_EQ(v.contains(addr), v.contains_reference(addr));
    EXPECT_EQ(f.contains(addr), v.contains_reference(addr));
  }
}

TEST(SegmentMapDifferential, IndexedMatchesReference) {
  std::mt19937_64 rng(0x5E6);
  for (int shape = 0; shape < 6; ++shape) {
    SegmentMap<uint32_t> m;
    switch (shape) {
      case 0:
        break;  // empty
      case 1:
        m.assign(0, uint64_t{1} << 32, 7);  // full range
        break;
      case 2:  // dense /24 run, alternating values (no coalescing)
        for (uint64_t i = 0; i < 4096; ++i) {
          const uint64_t b = (uint64_t{20} << 24) + i * 256;
          m.assign(b, b + 256, static_cast<uint32_t>(i % 3));
        }
        break;
      case 3:  // singleton addresses
        for (uint64_t a = 100; a < 5000; a += 2) {
          m.assign(a, a + 1, static_cast<uint32_t>(a));
        }
        break;
      default:  // random paints, overwrite + merge
        for (int i = 0; i < 2000; ++i) {
          const uint64_t b = rng() % (uint64_t{1} << 32);
          const uint64_t e =
              std::min(b + 1 + rng() % 1'000'000, uint64_t{1} << 32);
          if (i % 2) {
            m.assign(b, e, static_cast<uint32_t>(rng() % 100));
          } else {
            m.merge(b, e, static_cast<uint32_t>(rng() % 100),
                    [](const std::optional<uint32_t>& old, uint32_t v) {
                      return old ? *old | v : v;
                    });
          }
        }
        break;
    }
    m.finalize();
    ASSERT_TRUE(m.has_fast_index());
    std::vector<uint64_t> probes;
    size_t budget = 1024;
    for (const auto& seg : m.segments()) {
      if (budget-- == 0) break;
      if (seg.begin > 0) probes.push_back(seg.begin - 1);
      probes.push_back(seg.begin);
      probes.push_back(seg.end - 1);
      if (seg.end < (uint64_t{1} << 32)) probes.push_back(seg.end);
    }
    for (int i = 0; i < 512; ++i) probes.push_back(rng() % (uint64_t{1} << 32));
    std::vector<const uint32_t*> batch(probes.size());
    m.lookup_batch(probes, batch.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      const uint32_t* ref = m.lookup_reference(probes[i]);
      const uint32_t* fast = m.lookup(probes[i]);
      ASSERT_EQ(fast == nullptr, ref == nullptr) << probes[i];
      ASSERT_EQ(batch[i] == nullptr, ref == nullptr) << probes[i];
      if (ref) {
        ASSERT_EQ(*fast, *ref) << probes[i];
        ASSERT_EQ(*batch[i], *ref) << probes[i];
      }
    }
    // A view over the finalized segments answers identically.
    SegmentMap<uint32_t> v = SegmentMap<uint32_t>::view(m.segments());
    ASSERT_TRUE(v.has_fast_index());
    for (uint64_t p : probes) {
      const uint32_t* a = v.lookup(p);
      const uint32_t* b = m.lookup_reference(p);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a) ASSERT_EQ(*a, *b);
    }
  }
}

// ------------------------------------------------------------- snapshot --

svc::Snapshot make_random_snapshot(std::mt19937_64& rng) {
  IntervalSet routed, as0, irr, alloc;
  auto fill = [&](IntervalSet& s, int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t b = rng() % (uint64_t{1} << 32);
      s.insert(b, std::min(b + 1 + rng() % 500'000, uint64_t{1} << 32));
    }
  };
  fill(routed, 3000);
  fill(as0, 300);
  fill(irr, 800);
  fill(alloc, 500);
  SegmentMap<svc::Snapshot::DropInfo> drop;
  SegmentMap<uint8_t> rov, rir;
  for (int i = 0; i < 400; ++i) {
    const uint64_t b = rng() % (uint64_t{1} << 32);
    const uint64_t e = std::min(b + 1 + rng() % 100'000, uint64_t{1} << 32);
    drop.assign(b, e,
                svc::Snapshot::DropInfo{static_cast<uint8_t>(1 + rng() % 7),
                                        static_cast<uint8_t>(rng() % 2)});
    rov.assign(e % (uint64_t{1} << 32), std::min(e + 50'000, uint64_t{1} << 32),
               static_cast<uint8_t>(rng() % 3));
    rir.assign(b / 2, std::min(b / 2 + 200'000, uint64_t{1} << 32),
               static_cast<uint8_t>(rng() % 5));
  }
  drop.finalize();
  rov.finalize();
  rir.finalize();
  return svc::Snapshot(1, net::Date::from_ymd(2022, 1, 15), 0,
                       std::move(routed), std::move(as0), std::move(irr),
                       std::move(alloc), std::move(drop), std::move(rov),
                       std::move(rir));
}

TEST(SnapshotDifferential, BatchAndScalarMatchReference) {
  std::mt19937_64 rng(0x54AB);
  const svc::Snapshot snap = make_random_snapshot(rng);
  std::vector<Prefix> probes;
  std::vector<uint8_t> fields;
  for (int i = 0; i < 4096; ++i) {
    const auto addr = static_cast<uint32_t>(rng());
    probes.push_back(
        Prefix::containing(net::Ipv4(addr), 8 + static_cast<int>(rng() % 25)));
    // Mixed field masks inside one batch, including zero.
    fields.push_back(static_cast<uint8_t>(rng() % (svc::kAllFields + 1)));
  }
  std::vector<svc::Answer> batched(probes.size());
  snap.lookup_batch(probes, fields, batched);
  for (size_t i = 0; i < probes.size(); ++i) {
    const svc::Answer ref = snap.lookup_reference(probes[i], fields[i]);
    const svc::Answer fast = snap.lookup(probes[i], fields[i]);
    ASSERT_EQ(fast, ref) << probes[i].to_string();
    ASSERT_EQ(batched[i], ref) << probes[i].to_string();
  }
}

// The TSan gate: the index is immutable after build; concurrent batched
// and scalar readers on one shared snapshot must be race-free.
TEST(SnapshotDifferential, ConcurrentReadersAreRaceFree) {
  std::mt19937_64 rng(0xC0FFEE);
  const svc::Snapshot snap = make_random_snapshot(rng);
  std::vector<Prefix> probes;
  std::vector<uint8_t> fields(512, svc::kAllFields);
  for (int i = 0; i < 512; ++i) {
    probes.push_back(Prefix::containing(net::Ipv4(static_cast<uint32_t>(rng())),
                                        24));
  }
  std::vector<svc::Answer> expected(probes.size());
  snap.lookup_batch(probes, fields, expected);
  std::vector<std::thread> readers;
  std::atomic<bool> diverged{false};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        std::vector<svc::Answer> got(probes.size());
        snap.lookup_batch(probes, fields, got);
        if (got != expected) diverged = true;
        for (size_t i = 0; i < probes.size(); ++i) {
          if (!(snap.lookup(probes[i], svc::kAllFields) == expected[i])) {
            diverged = true;
          }
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_FALSE(diverged.load());
}

}  // namespace
}  // namespace droplens
